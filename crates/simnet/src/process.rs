//! Process abstraction: the unit of computation driven by a runtime.
//!
//! A [`Process`] is an event-driven state machine. It never blocks: it reacts to
//! `on_start`, `on_message` and `on_timer` callbacks and emits actions (send a
//! message, set a timer, …) through the [`Runtime`] it is given. The same
//! process object runs unmodified on the deterministic simulator
//! ([`World`](crate::World)) and on the real-clock threaded backend (the
//! `oar-rtnet` crate) — the runtime boundary is the trait, not the process.

use std::any::Any;
use std::fmt;

use crate::runtime::{Runtime, TimerTag};

/// Identifier of a process inside a deployment.
///
/// Identifiers are assigned densely, in the order processes are added, starting
/// at zero. The OAR protocol uses the position of a server in `Π` as its
/// identity (e.g. for the rotating sequencer), which maps directly onto this.
///
/// The field is opaque: backends assign ids ([`crate::World::add_process`]
/// and the rtnet equivalent return them), and everyone else goes through
/// [`ProcessId::new`] / [`ProcessId::index`] — process code cannot pattern
/// its way into the representation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// A process id with the given numeric index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// The numeric index of the process.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value)
    }
}

/// Identifier of a replication group (shard) inside a deployment.
///
/// A single-group deployment — the paper's setting — lives entirely in
/// [`GroupId::default`] (`g0`). Sharded deployments partition the key space
/// over several groups, each with its own sequencer, consensus instance and
/// failure detector; the simulator uses the group id only for addressing
/// assertions and per-group metrics ([`World::assign_group`]), never for
/// routing — groups share one network.
///
/// Like [`ProcessId`], the field is opaque: construct with [`GroupId::new`],
/// read with [`GroupId::index`].
///
/// [`World::assign_group`]: crate::World::assign_group
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub(crate) usize);

impl GroupId {
    /// A group id with the given numeric index.
    pub const fn new(index: usize) -> Self {
        GroupId(index)
    }

    /// The numeric index of the group.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<usize> for GroupId {
    fn from(value: usize) -> Self {
        GroupId(value)
    }
}

/// Identifier of a timer set through [`Runtime::set_timer`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// A fired timer, as delivered to [`Process::on_timer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Timer {
    /// The identifier returned by `set_timer`.
    pub id: TimerId,
    /// The caller-chosen tag, used to distinguish timer purposes.
    pub tag: TimerTag,
}

/// Object-safe helper for downcasting processes to their concrete type.
///
/// Implemented automatically for every `'static` type; users never need to
/// implement it by hand.
pub trait AsAny {
    /// Upcasts to `&dyn Any` for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts to `&mut dyn Any` for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An event-driven process, generic over the wire message type `M`.
///
/// All callbacks run to completion without blocking ("tasks execute in mutual
/// exclusion" in the paper's words); the only way to affect the outside world
/// is through the [`Runtime`] handed to each callback. Taking the runtime as
/// a trait object keeps `Process<M>` itself object-safe, which is how both
/// backends store heterogeneous process collections.
pub trait Process<M>: AsAny {
    /// Called once, when the deployment starts (before any message delivery).
    fn on_start(&mut self, _rt: &mut dyn Runtime<M>) {}

    /// Called when a message from `from` is delivered to this process.
    fn on_message(&mut self, rt: &mut dyn Runtime<M>, from: ProcessId, msg: M);

    /// Called when a timer previously set by this process fires.
    fn on_timer(&mut self, _rt: &mut dyn Runtime<M>, _timer: Timer) {}

    /// Called once if the runtime crashes this process; after this call the
    /// process receives no further events. Useful to flush statistics.
    fn on_crash(&mut self) {}

    /// A short human-readable name used in traces.
    fn name(&self) -> String {
        "process".to_owned()
    }

    /// Returns a deep copy of this process, boxed, so a model checker can
    /// fork the whole [`World`](crate::World) at a scheduling choice.
    ///
    /// The default returns `None` ("not forkable"); processes that want to be
    /// explored by the `oar-mc` checker override this with a clone of
    /// themselves. [`World::fork`](crate::World::fork) fails if any process
    /// returns `None`.
    fn fork(&self) -> Option<Box<dyn Process<M>>> {
        None
    }

    /// A digest of the process's *protocol-relevant* state, used by a model
    /// checker to deduplicate visited global states.
    ///
    /// Two processes whose digests are equal must behave identically on every
    /// future event; fields that are pure observability (wall-clock stats,
    /// history logs) should be excluded. The default returns `None` ("no
    /// digest"), which disables state deduplication for worlds containing
    /// this process.
    fn state_digest(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Process<u32> for Dummy {
        fn on_message(&mut self, _rt: &mut dyn Runtime<u32>, _from: ProcessId, _msg: u32) {}
    }

    #[test]
    fn process_id_display_and_index() {
        let p = ProcessId::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(format!("{p}"), "p3");
        assert_eq!(format!("{p:?}"), "p3");
        assert_eq!(ProcessId::from(7), ProcessId::new(7));
    }

    #[test]
    fn group_id_display_and_index() {
        let g = GroupId::new(2);
        assert_eq!(g.index(), 2);
        assert_eq!(format!("{g}"), "g2");
        assert_eq!(format!("{g:?}"), "g2");
        assert_eq!(GroupId::from(5), GroupId::new(5));
        assert_eq!(GroupId::default(), GroupId::new(0));
    }

    #[test]
    fn as_any_downcast_works() {
        let d: Box<dyn Process<u32>> = Box::new(Dummy);
        let inner: &dyn Process<u32> = d.as_ref();
        assert!(AsAny::as_any(inner).downcast_ref::<Dummy>().is_some());
    }

    #[test]
    fn default_name() {
        assert_eq!(Dummy.name(), "process");
    }
}
