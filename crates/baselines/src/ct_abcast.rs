//! Atomic Broadcast by reduction to consensus (Chandra–Toueg style), used as
//! the *conservative* baseline: always safe, never optimistic, and therefore
//! paying the full consensus latency on every batch even in failure-free runs.
//!
//! Protocol sketch (the classic `AB ≤ consensus` reduction of \[CT96\]): clients
//! send their request to every replica; replicas accumulate undelivered
//! requests and run a sequence of consensus instances, each deciding the next
//! batch of requests to deliver; the batch is delivered in a deterministic
//! order and every replica replies; the client adopts the first reply (all
//! replies are identical because delivery is uniform total order).

use std::collections::{BTreeSet, HashMap, HashSet};

use oar::state_machine::StateMachine;
use oar::RequestId;
use oar_channels::MsgId;
use oar_consensus::{ConsensusConfig, ConsensusSend, ConsensusWire, Decision, MajConsensus};
use oar_fd::{FdConfig, FdWire, HeartbeatFd};
use oar_sequence::{dedup_append, Seq};
use oar_simnet::{Process, ProcessId, Runtime, SimDuration, SimTime, Timer, TimerTag};

/// Timer tag for the periodic maintenance tick.
const TICK: TimerTag = TimerTag::Tick;
/// Timer tag for the client think-time delay.
const NEXT_REQUEST: TimerTag = TimerTag::NextRequest;

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub struct CtRequest<C> {
    /// Unique identifier.
    pub id: RequestId,
    /// Issuing client.
    pub client: ProcessId,
    /// Command for the replicated service.
    pub command: C,
}

/// A server reply.
#[derive(Clone, Debug, PartialEq)]
pub struct CtReply<R> {
    /// The request answered.
    pub request: RequestId,
    /// Delivery position.
    pub position: u64,
    /// Application response.
    pub response: R,
    /// Replying server.
    pub from: ProcessId,
}

/// Wire messages of the consensus-based atomic broadcast.
#[derive(Clone, Debug, PartialEq)]
pub enum CtWire<C, R> {
    /// Client request, sent to every replica.
    Request(CtRequest<C>),
    /// Server reply.
    Reply(CtReply<R>),
    /// Consensus message for batch `instance`.
    Consensus(ConsensusWire<Seq<RequestId>>),
    /// Failure-detector heartbeat.
    Fd(FdWire),
}

/// A consensus wire message buffered for a future instance.
type BufferedWire = (ProcessId, ConsensusWire<Seq<RequestId>>);

/// One replica of the consensus-based atomic broadcast.
#[derive(Debug)]
pub struct CtServer<S: StateMachine> {
    id: ProcessId,
    group: Vec<ProcessId>,
    fd: HeartbeatFd,
    tick: SimDuration,
    consensus_config: ConsensusConfig,
    payloads: HashMap<RequestId, CtRequest<S::Command>>,
    pending: Vec<RequestId>,
    delivered: HashSet<RequestId>,
    delivery_order: Vec<RequestId>,
    position: u64,
    batch: u64,
    consensus: Option<MajConsensus<Seq<RequestId>>>,
    buffered: HashMap<u64, Vec<BufferedWire>>,
    pending_decision: Option<Decision<Seq<RequestId>>>,
    sm: S,
}

impl<S: StateMachine> CtServer<S> {
    /// Creates a replica.
    pub fn new(
        id: ProcessId,
        group: Vec<ProcessId>,
        fd: FdConfig,
        tick: SimDuration,
        sm: S,
    ) -> Self {
        CtServer {
            id,
            fd: HeartbeatFd::new(id, group.clone(), fd),
            group,
            tick,
            consensus_config: ConsensusConfig::default(),
            payloads: HashMap::new(),
            pending: Vec::new(),
            delivered: HashSet::new(),
            delivery_order: Vec::new(),
            position: 0,
            batch: 0,
            consensus: None,
            buffered: HashMap::new(),
            pending_decision: None,
            sm,
        }
    }

    /// The replica's delivery order so far.
    pub fn delivery_order(&self) -> &[RequestId] {
        &self.delivery_order
    }

    /// The replicated state machine.
    pub fn state_machine(&self) -> &S {
        &self.sm
    }

    /// Number of consensus batches completed.
    pub fn batches_completed(&self) -> u64 {
        self.batch
    }

    fn undelivered(&self) -> Seq<RequestId> {
        self.pending
            .iter()
            .filter(|id| !self.delivered.contains(id))
            .copied()
            .collect()
    }

    fn maybe_start_batch(&mut self, ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>) {
        if self.consensus.is_some() {
            return;
        }
        let proposal = self.undelivered();
        let has_buffered = self.buffered.contains_key(&self.batch);
        if proposal.is_empty() && !has_buffered {
            return;
        }
        let first_coordinator = self.group[(self.batch as usize) % self.group.len()];
        let mut consensus = MajConsensus::new(
            self.batch,
            self.id,
            self.group.clone(),
            first_coordinator,
            self.consensus_config,
        );
        let output = consensus.propose(proposal);
        self.consensus = Some(consensus);
        self.dispatch(ctx, output.messages, output.decision);
        let buffered = self.buffered.remove(&self.batch).unwrap_or_default();
        for (from, wire) in buffered {
            self.feed(ctx, from, wire);
        }
        self.push_suspects(ctx);
    }

    fn push_suspects(&mut self, ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>) {
        if let Some(consensus) = self.consensus.as_mut() {
            let suspects: BTreeSet<ProcessId> = self.fd.suspects().clone();
            let output = consensus.update_suspects(&suspects);
            self.dispatch(ctx, output.messages, output.decision);
        }
    }

    fn feed(
        &mut self,
        ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>,
        from: ProcessId,
        wire: ConsensusWire<Seq<RequestId>>,
    ) {
        if let Some(consensus) = self.consensus.as_mut() {
            let output = consensus.on_wire(from, wire);
            self.dispatch(ctx, output.messages, output.decision);
        }
    }

    fn dispatch(
        &mut self,
        ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>,
        messages: Vec<ConsensusSend<Seq<RequestId>>>,
        decision: Option<Decision<Seq<RequestId>>>,
    ) {
        for send in messages {
            if let [to] = send.targets[..] {
                ctx.send(to, CtWire::Consensus(send.wire));
            } else {
                // Group-wide wire: one shared allocation for all recipients.
                ctx.send_all(&send.targets, CtWire::Consensus(send.wire));
            }
        }
        if let Some(decision) = decision {
            self.pending_decision = Some(decision);
            self.try_apply_decision(ctx);
        }
    }

    fn try_apply_decision(&mut self, ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>) {
        let Some(decision) = self.pending_decision.clone() else {
            return;
        };
        let all_known = decision
            .iter()
            .flat_map(|(_, seq)| seq.iter())
            .all(|id| self.payloads.contains_key(id));
        if !all_known {
            return;
        }
        self.pending_decision = None;
        // Deterministic merge of the decided proposals, in decision order.
        let merged = dedup_append(decision.into_iter().map(|(_, seq)| seq));
        for id in merged.iter() {
            if self.delivered.contains(id) {
                continue;
            }
            let request = self.payloads.get(id).expect("payload present").clone();
            self.delivered.insert(*id);
            self.delivery_order.push(*id);
            self.position += 1;
            let (response, _undo) = self.sm.apply(&request.command);
            ctx.annotate(format!("A-deliver({id}) @{}", self.position));
            ctx.send(
                request.client,
                CtWire::Reply(CtReply {
                    request: *id,
                    position: self.position,
                    response,
                    from: self.id,
                }),
            );
        }
        self.batch += 1;
        self.consensus = None;
        // Immediately start the next batch if there is a backlog.
        self.maybe_start_batch(ctx);
    }
}

impl<S: StateMachine> Process<CtWire<S::Command, S::Response>> for CtServer<S> {
    fn on_start(&mut self, ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>) {
        ctx.set_timer(self.tick, TICK);
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>,
        from: ProcessId,
        msg: CtWire<S::Command, S::Response>,
    ) {
        if self.group.contains(&from) && from != self.id {
            self.fd.observe_traffic(from, ctx.now());
        }
        match msg {
            CtWire::Request(request) => {
                let id = request.id;
                if self.payloads.contains_key(&id) {
                    return;
                }
                self.payloads.insert(id, request);
                self.pending.push(id);
                self.try_apply_decision(ctx);
                self.maybe_start_batch(ctx);
            }
            CtWire::Consensus(wire) => {
                let instance = wire.instance();
                if instance < self.batch {
                    return;
                }
                if instance > self.batch || self.consensus.is_none() {
                    self.buffered
                        .entry(instance)
                        .or_default()
                        .push((from, wire));
                    // A peer started a batch we have not: join it even if we
                    // have nothing to propose.
                    if instance == self.batch {
                        self.maybe_start_batch(ctx);
                    }
                    return;
                }
                self.feed(ctx, from, wire);
            }
            CtWire::Fd(wire) => {
                self.fd.on_wire(from, wire, ctx.now());
                self.push_suspects(ctx);
            }
            CtWire::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag != TICK {
            return;
        }
        let (heartbeats, _events) = self.fd.on_tick(ctx.now());
        for hb in heartbeats {
            ctx.send(hb.to, CtWire::Fd(hb.wire));
        }
        self.push_suspects(ctx);
        self.maybe_start_batch(ctx);
        self.try_apply_decision(ctx);
        ctx.set_timer(self.tick, TICK);
    }

    fn name(&self) -> String {
        format!("ct-server-{}", self.id.index())
    }
}

/// A completed request at the CT-broadcast client.
#[derive(Clone, Debug, PartialEq)]
pub struct CtCompleted<R> {
    /// Request id.
    pub id: RequestId,
    /// Adopted (first) response.
    pub response: R,
    /// Delivery position reported by the reply.
    pub position: u64,
    /// When the request was sent.
    pub sent_at: SimTime,
    /// When the first reply arrived.
    pub completed_at: SimTime,
}

impl<R> CtCompleted<R> {
    /// Client-observed latency.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.duration_since(self.sent_at)
    }
}

/// A closed-loop client of the consensus-based atomic broadcast.
#[derive(Debug)]
pub struct CtClient<S: StateMachine> {
    id: ProcessId,
    servers: Vec<ProcessId>,
    workload: Vec<S::Command>,
    next_index: usize,
    next_seq: u64,
    think_time: SimDuration,
    outstanding: Option<RequestId>,
    sent_at: SimTime,
    completed: Vec<CtCompleted<S::Response>>,
}

impl<S: StateMachine> CtClient<S> {
    /// Creates the client.
    pub fn new(
        id: ProcessId,
        servers: Vec<ProcessId>,
        workload: Vec<S::Command>,
        think_time: SimDuration,
    ) -> Self {
        CtClient {
            id,
            servers,
            workload,
            next_index: 0,
            next_seq: 0,
            think_time,
            outstanding: None,
            sent_at: SimTime::ZERO,
            completed: Vec::new(),
        }
    }

    /// Completed requests, in completion order.
    pub fn completed(&self) -> &[CtCompleted<S::Response>] {
        &self.completed
    }

    /// Whether the workload is fully submitted and answered.
    pub fn is_done(&self) -> bool {
        self.next_index >= self.workload.len() && self.outstanding.is_none()
    }

    fn send_next(&mut self, ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>) {
        if self.next_index >= self.workload.len() {
            return;
        }
        let command = self.workload[self.next_index].clone();
        self.next_index += 1;
        let id = MsgId::new(self.id, self.next_seq);
        self.next_seq += 1;
        for &s in &self.servers {
            ctx.send(
                s,
                CtWire::Request(CtRequest {
                    id,
                    client: self.id,
                    command: command.clone(),
                }),
            );
        }
        self.outstanding = Some(id);
        self.sent_at = ctx.now();
    }
}

impl<S: StateMachine> Process<CtWire<S::Command, S::Response>> for CtClient<S> {
    fn on_start(&mut self, ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>) {
        self.send_next(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>,
        _from: ProcessId,
        msg: CtWire<S::Command, S::Response>,
    ) {
        let CtWire::Reply(reply) = msg else { return };
        if Some(reply.request) != self.outstanding {
            return;
        }
        self.outstanding = None;
        self.completed.push(CtCompleted {
            id: reply.request,
            response: reply.response,
            position: reply.position,
            sent_at: self.sent_at,
            completed_at: ctx.now(),
        });
        if self.next_index < self.workload.len() {
            if self.think_time.is_zero() {
                self.send_next(ctx);
            } else {
                ctx.set_timer(self.think_time, NEXT_REQUEST);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<CtWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag == NEXT_REQUEST && self.outstanding.is_none() {
            self.send_next(ctx);
        }
    }

    fn name(&self) -> String {
        format!("ct-client-{}", self.id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oar::state_machine::{CounterCommand, CounterMachine};
    use oar_simnet::{NetConfig, World};

    type Wire = CtWire<CounterCommand, i64>;

    fn build(n: usize, requests: usize, seed: u64) -> (World<Wire>, Vec<ProcessId>, ProcessId) {
        let mut world: World<Wire> = World::new(NetConfig::lan(), seed);
        let group: Vec<ProcessId> = (0..n).map(ProcessId::new).collect();
        for &id in &group {
            world.add_process(CtServer::new(
                id,
                group.clone(),
                FdConfig::default(),
                SimDuration::from_millis(1),
                CounterMachine::default(),
            ));
        }
        let workload: Vec<CounterCommand> = (0..requests)
            .map(|i| CounterCommand::Add(i as i64 + 1))
            .collect();
        let client = world.add_process(CtClient::<CounterMachine>::new(
            ProcessId::new(n),
            group.clone(),
            workload,
            SimDuration::ZERO,
        ));
        (world, group, client)
    }

    #[test]
    fn failure_free_run_delivers_in_total_order() {
        let (mut world, group, client) = build(3, 6, 1);
        world.run_until_quiescent(SimTime::from_secs(10));
        let c = world.process_ref::<CtClient<CounterMachine>>(client);
        assert!(c.is_done(), "client did not finish");
        assert_eq!(c.completed().len(), 6);
        let orders: Vec<Vec<RequestId>> = group
            .iter()
            .map(|&s| {
                world
                    .process_ref::<CtServer<CounterMachine>>(s)
                    .delivery_order()
                    .to_vec()
            })
            .collect();
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[1], orders[2]);
        // Responses are totally ordered and final: positions are 1..=6.
        let positions: Vec<u64> = c.completed().iter().map(|r| r.position).collect();
        assert_eq!(positions, (1..=6).collect::<Vec<_>>());
    }

    #[test]
    fn replica_crash_is_tolerated() {
        let (mut world, group, client) = build(3, 5, 2);
        world.schedule_crash(group[2], SimTime::from_millis(1));
        world.run_until_quiescent(SimTime::from_secs(20));
        let c = world.process_ref::<CtClient<CounterMachine>>(client);
        assert!(c.is_done(), "client did not finish after replica crash");
    }

    #[test]
    fn latency_exceeds_fixed_sequencer_shape() {
        // The consensus path needs strictly more communication steps than the
        // sequencer path: with a constant-latency network the first reply
        // cannot arrive before 4 one-way delays (request, estimate, propose,
        // ack+decide, reply collapse partially because the coordinator is also
        // a replica).
        let mut world: World<Wire> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 3);
        let group: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        for &id in &group {
            world.add_process(CtServer::new(
                id,
                group.clone(),
                FdConfig::default(),
                SimDuration::from_millis(1),
                CounterMachine::default(),
            ));
        }
        let client = world.add_process(CtClient::<CounterMachine>::new(
            ProcessId::new(3),
            group.clone(),
            vec![CounterCommand::Add(1)],
            SimDuration::ZERO,
        ));
        world.run_until_quiescent(SimTime::from_secs(5));
        let c = world.process_ref::<CtClient<CounterMachine>>(client);
        assert!(c.is_done());
        assert!(c.completed()[0].latency() >= SimDuration::from_millis(3));
    }
}
