//! The Isis/Amoeba-style fixed-sequencer Atomic Broadcast baseline (§2.4 of
//! the paper) used for active replication.
//!
//! Protocol: the client sends its request to every replica; the sequencer
//! assigns sequence numbers and broadcasts them; every replica delivers in
//! sequence-number order and replies; the client adopts the **first** reply it
//! receives. On suspicion of the sequencer, the next replica in the ring takes
//! over and (re-)orders any request it has not seen ordered.
//!
//! This is the low-latency baseline the OAR paper builds on — and the protocol
//! whose failure mode OAR fixes: when the sequencer crashes (or is wrongly
//! suspected) after replying but before its ordering reaches the other
//! replicas, the new sequencer may choose a different order, silently
//! invalidating replies that clients already adopted (Figure 1b). The protocol
//! has **no repair mechanism**: replicas that delivered in the old order keep
//! their state and simply skip re-ordered duplicates, so replicas can also stay
//! permanently inconsistent. The `InconsistencyReport` of the cluster harness
//! (see [`crate::harness`]) makes both effects measurable.

use std::collections::{HashMap, HashSet};

use oar::state_machine::StateMachine;
use oar::RequestId;
use oar_channels::MsgId;
use oar_fd::{FdConfig, FdEvent, FdWire, HeartbeatFd};
use oar_sequence::Seq;
use oar_simnet::{Process, ProcessId, Runtime, SimDuration, SimTime, Timer, TimerTag};

/// Timer tag for the periodic maintenance tick.
const TICK: TimerTag = TimerTag::Tick;
/// Timer tag for the client think-time delay.
const NEXT_REQUEST: TimerTag = TimerTag::NextRequest;

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqRequest<C> {
    /// Unique identifier.
    pub id: RequestId,
    /// Issuing client.
    pub client: ProcessId,
    /// Command for the replicated service.
    pub command: C,
}

/// A server reply.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqReply<R> {
    /// The request answered.
    pub request: RequestId,
    /// Position at which the replying server delivered it.
    pub position: u64,
    /// Application response.
    pub response: R,
    /// Replying server.
    pub from: ProcessId,
}

/// Wire messages of the fixed-sequencer protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum SeqWire<C, R> {
    /// Client request (sent to every replica).
    Request(SeqRequest<C>),
    /// Sequencer ordering: the requests to deliver next, in order.
    Order {
        /// Ordering sequence number of the batch (per sequencer reign).
        view: u64,
        /// The ordered requests.
        order: Seq<RequestId>,
    },
    /// Server reply to the client.
    Reply(SeqReply<R>),
    /// Failure-detector heartbeat.
    Fd(FdWire),
}

/// One server replica of the fixed-sequencer baseline.
#[derive(Debug)]
pub struct SequencerServer<S: StateMachine> {
    id: ProcessId,
    group: Vec<ProcessId>,
    fd: HeartbeatFd,
    tick: SimDuration,
    /// Requests received but not yet delivered, in reception order.
    pending: Vec<RequestId>,
    payloads: HashMap<RequestId, SeqRequest<S::Command>>,
    delivered: HashSet<RequestId>,
    delivery_order: Vec<RequestId>,
    /// Requests ordered (by the sequencer) but whose payload has not arrived
    /// yet; they are delivered as soon as the payload shows up, preserving the
    /// ordering.
    order_queue: Vec<RequestId>,
    /// Requests this server ordered while acting as sequencer.
    ordered_by_me: HashSet<RequestId>,
    position: u64,
    sm: S,
    view: u64,
}

impl<S: StateMachine> SequencerServer<S> {
    /// Creates a replica.
    pub fn new(
        id: ProcessId,
        group: Vec<ProcessId>,
        fd: FdConfig,
        tick: SimDuration,
        sm: S,
    ) -> Self {
        SequencerServer {
            id,
            fd: HeartbeatFd::new(id, group.clone(), fd),
            group,
            tick,
            pending: Vec::new(),
            payloads: HashMap::new(),
            delivered: HashSet::new(),
            delivery_order: Vec::new(),
            order_queue: Vec::new(),
            ordered_by_me: HashSet::new(),
            position: 0,
            sm,
            view: 0,
        }
    }

    /// The replica's delivery order so far.
    pub fn delivery_order(&self) -> &[RequestId] {
        &self.delivery_order
    }

    /// The replicated state machine.
    pub fn state_machine(&self) -> &S {
        &self.sm
    }

    /// The current sequencer from this replica's point of view: the first
    /// group member it does not suspect.
    pub fn current_sequencer(&self) -> ProcessId {
        self.group
            .iter()
            .copied()
            .find(|p| !self.fd.is_suspected(*p))
            .unwrap_or(self.id)
    }

    fn is_sequencer(&self) -> bool {
        self.current_sequencer() == self.id
    }

    /// Queues `ids` for delivery in order, then delivers every queued request
    /// whose payload is available (stopping at the first gap so the order is
    /// preserved).
    fn enqueue_and_drain(
        &mut self,
        ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>,
        ids: &[RequestId],
    ) {
        for id in ids {
            if !self.delivered.contains(id) && !self.order_queue.contains(id) {
                self.order_queue.push(*id);
            }
        }
        while let Some(&next) = self.order_queue.first() {
            if self.delivered.contains(&next) {
                self.order_queue.remove(0);
                continue;
            }
            if !self.payloads.contains_key(&next) {
                break;
            }
            self.order_queue.remove(0);
            self.deliver(ctx, next);
        }
    }

    fn deliver(&mut self, ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>, id: RequestId) {
        if self.delivered.contains(&id) {
            return;
        }
        let Some(request) = self.payloads.get(&id).cloned() else {
            return;
        };
        self.delivered.insert(id);
        self.delivery_order.push(id);
        self.position += 1;
        let (response, _undo) = self.sm.apply(&request.command);
        ctx.annotate(format!("deliver({id}) @{}", self.position));
        ctx.send(
            request.client,
            SeqWire::Reply(SeqReply {
                request: id,
                position: self.position,
                response,
                from: self.id,
            }),
        );
    }

    fn maybe_order(&mut self, ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>) {
        if !self.is_sequencer() {
            return;
        }
        let unordered: Seq<RequestId> = self
            .pending
            .iter()
            .filter(|id| !self.delivered.contains(id) && !self.ordered_by_me.contains(id))
            .copied()
            .collect();
        if unordered.is_empty() {
            return;
        }
        for id in unordered.iter() {
            self.ordered_by_me.insert(*id);
        }
        for &p in &self.group.clone() {
            if p != self.id {
                ctx.send(
                    p,
                    SeqWire::Order {
                        view: self.view,
                        order: unordered.clone(),
                    },
                );
            }
        }
        for id in unordered.iter() {
            self.deliver(ctx, *id);
        }
    }

    fn handle_fd_events(
        &mut self,
        ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>,
        events: Vec<FdEvent>,
    ) {
        if events.iter().any(|e| matches!(e, FdEvent::Suspect(_))) {
            self.view += 1;
            // If the suspicion promoted us to sequencer, (re-)order whatever we
            // have not seen ordered — this is where inconsistency can creep in.
            self.maybe_order(ctx);
        }
    }
}

impl<S: StateMachine> Process<SeqWire<S::Command, S::Response>> for SequencerServer<S> {
    fn on_start(&mut self, ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>) {
        ctx.set_timer(self.tick, TICK);
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>,
        from: ProcessId,
        msg: SeqWire<S::Command, S::Response>,
    ) {
        if self.group.contains(&from) && from != self.id {
            let events = self.fd.observe_traffic(from, ctx.now());
            self.handle_fd_events(ctx, events);
        }
        match msg {
            SeqWire::Request(request) => {
                let id = request.id;
                if self.payloads.contains_key(&id) {
                    return;
                }
                self.payloads.insert(id, request);
                self.pending.push(id);
                // A payload arrival may unblock orderings received earlier.
                self.enqueue_and_drain(ctx, &[]);
                self.maybe_order(ctx);
            }
            SeqWire::Order { order, .. } => {
                if from == self.current_sequencer() {
                    let ids: Vec<RequestId> = order.iter().copied().collect();
                    self.enqueue_and_drain(ctx, &ids);
                }
            }
            SeqWire::Fd(wire) => {
                let events = self.fd.on_wire(from, wire, ctx.now());
                self.handle_fd_events(ctx, events);
            }
            SeqWire::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag != TICK {
            return;
        }
        let (heartbeats, events) = self.fd.on_tick(ctx.now());
        for hb in heartbeats {
            ctx.send(hb.to, SeqWire::Fd(hb.wire));
        }
        self.handle_fd_events(ctx, events);
        self.maybe_order(ctx);
        ctx.set_timer(self.tick, TICK);
    }

    fn name(&self) -> String {
        format!("seq-server-{}", self.id.index())
    }
}

/// A completed request at the fixed-sequencer client.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqCompleted<R> {
    /// Request id.
    pub id: RequestId,
    /// The first (adopted) response.
    pub response: R,
    /// Position reported by the adopted reply.
    pub position: u64,
    /// Server whose reply was adopted.
    pub from: ProcessId,
    /// When the request was sent.
    pub sent_at: SimTime,
    /// When the first reply arrived.
    pub completed_at: SimTime,
    /// Every `(server, position, response)` observed, including after adoption
    /// — used to detect external inconsistency.
    pub all_replies: Vec<(ProcessId, u64, R)>,
}

impl<R> SeqCompleted<R> {
    /// Client-observed latency (first reply).
    pub fn latency(&self) -> SimDuration {
        self.completed_at.duration_since(self.sent_at)
    }
}

/// A closed-loop client of the fixed-sequencer baseline: adopts the first
/// reply, like classic active replication over Atomic Broadcast.
#[derive(Debug)]
pub struct SequencerClient<S: StateMachine> {
    id: ProcessId,
    servers: Vec<ProcessId>,
    workload: Vec<S::Command>,
    next_index: usize,
    next_seq: u64,
    think_time: SimDuration,
    outstanding: Option<RequestId>,
    sent_at: SimTime,
    completed: Vec<SeqCompleted<S::Response>>,
}

impl<S: StateMachine> SequencerClient<S> {
    /// Creates the client.
    pub fn new(
        id: ProcessId,
        servers: Vec<ProcessId>,
        workload: Vec<S::Command>,
        think_time: SimDuration,
    ) -> Self {
        SequencerClient {
            id,
            servers,
            workload,
            next_index: 0,
            next_seq: 0,
            think_time,
            outstanding: None,
            sent_at: SimTime::ZERO,
            completed: Vec::new(),
        }
    }

    /// Completed requests, in completion order.
    pub fn completed(&self) -> &[SeqCompleted<S::Response>] {
        &self.completed
    }

    /// Whether the workload is fully submitted and answered.
    pub fn is_done(&self) -> bool {
        self.next_index >= self.workload.len() && self.outstanding.is_none()
    }

    fn send_next(&mut self, ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>) {
        if self.next_index >= self.workload.len() {
            return;
        }
        let command = self.workload[self.next_index].clone();
        self.next_index += 1;
        let id = MsgId::new(self.id, self.next_seq);
        self.next_seq += 1;
        for &s in &self.servers {
            ctx.send(
                s,
                SeqWire::Request(SeqRequest {
                    id,
                    client: self.id,
                    command: command.clone(),
                }),
            );
        }
        self.outstanding = Some(id);
        self.sent_at = ctx.now();
    }
}

impl<S: StateMachine> Process<SeqWire<S::Command, S::Response>> for SequencerClient<S> {
    fn on_start(&mut self, ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>) {
        self.send_next(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>,
        _from: ProcessId,
        msg: SeqWire<S::Command, S::Response>,
    ) {
        let SeqWire::Reply(reply) = msg else { return };
        // Late replies for already-completed requests are recorded so the
        // harness can detect divergence.
        if Some(reply.request) != self.outstanding {
            if let Some(done) = self.completed.iter_mut().find(|c| c.id == reply.request) {
                done.all_replies
                    .push((reply.from, reply.position, reply.response));
            }
            return;
        }
        self.outstanding = None;
        self.completed.push(SeqCompleted {
            id: reply.request,
            response: reply.response.clone(),
            position: reply.position,
            from: reply.from,
            sent_at: self.sent_at,
            completed_at: ctx.now(),
            all_replies: vec![(reply.from, reply.position, reply.response)],
        });
        if self.next_index < self.workload.len() {
            if self.think_time.is_zero() {
                self.send_next(ctx);
            } else {
                ctx.set_timer(self.think_time, NEXT_REQUEST);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<SeqWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag == NEXT_REQUEST && self.outstanding.is_none() {
            self.send_next(ctx);
        }
    }

    fn name(&self) -> String {
        format!("seq-client-{}", self.id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oar::state_machine::{CounterCommand, CounterMachine};
    use oar_simnet::{NetConfig, World};

    type Wire = SeqWire<CounterCommand, i64>;

    fn build(n: usize, requests: usize, seed: u64) -> (World<Wire>, Vec<ProcessId>, ProcessId) {
        let mut world: World<Wire> = World::new(NetConfig::lan(), seed);
        let group: Vec<ProcessId> = (0..n).map(ProcessId::new).collect();
        for &id in &group {
            world.add_process(SequencerServer::new(
                id,
                group.clone(),
                FdConfig::default(),
                SimDuration::from_millis(1),
                CounterMachine::default(),
            ));
        }
        let workload: Vec<CounterCommand> = (0..requests)
            .map(|i| CounterCommand::Add(i as i64 + 1))
            .collect();
        let client = world.add_process(SequencerClient::<CounterMachine>::new(
            ProcessId::new(n),
            group.clone(),
            workload,
            SimDuration::ZERO,
        ));
        (world, group, client)
    }

    #[test]
    fn failure_free_run_completes_with_identical_orders() {
        let (mut world, group, client) = build(3, 8, 1);
        world.run_until_quiescent(SimTime::from_secs(5));
        let c = world.process_ref::<SequencerClient<CounterMachine>>(client);
        assert!(c.is_done());
        assert_eq!(c.completed().len(), 8);
        let orders: Vec<Vec<RequestId>> = group
            .iter()
            .map(|&s| {
                world
                    .process_ref::<SequencerServer<CounterMachine>>(s)
                    .delivery_order()
                    .to_vec()
            })
            .collect();
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[1], orders[2]);
    }

    #[test]
    fn latency_is_about_three_network_hops() {
        let (mut world, _, client) = build(3, 1, 2);
        world.run_until_quiescent(SimTime::from_secs(5));
        let c = world.process_ref::<SequencerClient<CounterMachine>>(client);
        let latency = c.completed()[0].latency();
        // LAN latency is 50–200µs per hop; request → order → reply is ≈ 2–3
        // hops from the client's point of view (the sequencer's own reply needs
        // only 2).
        assert!(
            latency >= SimDuration::from_micros(100),
            "latency {latency}"
        );
        assert!(latency <= SimDuration::from_millis(2), "latency {latency}");
    }

    #[test]
    fn sequencer_crash_fails_over_to_next_replica() {
        let (mut world, group, client) = build(3, 10, 3);
        world.schedule_crash(group[0], SimTime::from_millis(2));
        world.run_until_quiescent(SimTime::from_secs(10));
        let c = world.process_ref::<SequencerClient<CounterMachine>>(client);
        assert!(c.is_done(), "client should finish after fail-over");
    }
}
