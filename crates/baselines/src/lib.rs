//! # oar-baselines — the protocols the OAR paper compares against
//!
//! Two complete active-replication baselines, implemented on the same
//! simulator substrate and driven by the same workloads as OAR so the
//! experiment harness can compare them head-to-head:
//!
//! * [`fixed_sequencer`] — the Isis/Amoeba-style sequencer-based Atomic
//!   Broadcast of §2.4: one ordering phase, lowest latency, but a sequencer
//!   crash or wrong suspicion can leak **external inconsistency** to clients
//!   (the paper's Figure 1b) and leave replicas permanently diverged;
//! * [`ct_abcast`] — Atomic Broadcast by reduction to Chandra–Toueg consensus:
//!   always safe, but every request pays the full consensus latency even in
//!   failure-free runs.
//!
//! OAR's claim is that it matches the first baseline's latency in failure-free
//! runs while keeping the second baseline's client-level consistency; the
//! experiment harness in `oar-bench` reproduces exactly that comparison.
//!
//! [`harness`] provides cluster builders mirroring [`oar::cluster::Cluster`],
//! including the [`harness::InconsistencyReport`] audit that counts
//! client-visible inconsistencies of the fixed-sequencer baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ct_abcast;
pub mod fixed_sequencer;
pub mod harness;

pub use ct_abcast::{CtClient, CtServer, CtWire};
pub use fixed_sequencer::{SeqWire, SequencerClient, SequencerServer};
pub use harness::{BaselineConfig, CtCluster, InconsistencyReport, SequencerCluster};
