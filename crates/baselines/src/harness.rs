//! Deployment harnesses for the baseline protocols, mirroring
//! [`oar::cluster::Cluster`] so that the experiment harness can run the same
//! workloads against OAR and against the baselines.

use oar::state_machine::StateMachine;
use oar::RequestId;
use oar_fd::FdConfig;
use oar_simnet::{NetConfig, ProcessId, Samples, SimDuration, SimTime, World};

use crate::ct_abcast::{CtClient, CtServer, CtWire};
use crate::fixed_sequencer::{SeqWire, SequencerClient, SequencerServer};

/// Shared deployment parameters for the baseline clusters.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Number of replicas.
    pub num_servers: usize,
    /// Number of clients.
    pub num_clients: usize,
    /// Network configuration.
    pub net: NetConfig,
    /// Failure-detector configuration.
    pub fd: FdConfig,
    /// Maintenance tick of the replicas.
    pub tick: SimDuration,
    /// Client think time.
    pub think_time: SimDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            num_servers: 3,
            num_clients: 1,
            net: NetConfig::lan(),
            fd: FdConfig::default(),
            tick: SimDuration::from_millis(1),
            think_time: SimDuration::ZERO,
            seed: 1,
        }
    }
}

/// What the external-consistency audit of a fixed-sequencer run found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InconsistencyReport {
    /// Completed requests whose adopted reply disagrees with a later reply for
    /// the same request (position or response differ) — the paper's external
    /// inconsistency.
    pub client_inconsistencies: usize,
    /// Pairs of alive replicas whose delivery orders are not prefix-compatible.
    pub diverging_replica_pairs: usize,
    /// Total completed requests audited.
    pub requests_audited: usize,
}

impl InconsistencyReport {
    /// Whether any inconsistency (client-visible or replica-level) was found.
    pub fn is_consistent(&self) -> bool {
        self.client_inconsistencies == 0 && self.diverging_replica_pairs == 0
    }
}

/// A deployment of the fixed-sequencer baseline.
pub struct SequencerCluster<S: StateMachine> {
    /// The simulation world (exposed for fault injection).
    pub world: World<SeqWire<S::Command, S::Response>>,
    /// Server identifiers.
    pub servers: Vec<ProcessId>,
    /// Client identifiers.
    pub clients: Vec<ProcessId>,
}

impl<S: StateMachine> SequencerCluster<S> {
    /// Builds the deployment.
    pub fn build(
        config: &BaselineConfig,
        mut make_sm: impl FnMut() -> S,
        mut workload_for: impl FnMut(usize) -> Vec<S::Command>,
    ) -> Self {
        let mut world: World<SeqWire<S::Command, S::Response>> =
            World::new(config.net.clone(), config.seed);
        let group: Vec<ProcessId> = (0..config.num_servers).map(ProcessId::new).collect();
        for &id in &group {
            world.add_process(SequencerServer::new(
                id,
                group.clone(),
                config.fd,
                config.tick,
                make_sm(),
            ));
        }
        let clients = (0..config.num_clients)
            .map(|c| {
                world.add_process(SequencerClient::<S>::new(
                    ProcessId::new(config.num_servers + c),
                    group.clone(),
                    workload_for(c),
                    config.think_time,
                ))
            })
            .collect();
        SequencerCluster {
            world,
            servers: group,
            clients,
        }
    }

    /// Runs until all clients are done or `horizon` is reached; returns whether
    /// all clients finished.
    pub fn run_to_completion(&mut self, horizon: SimTime) -> bool {
        let slice = SimDuration::from_millis(50);
        loop {
            let next = self.world.now() + slice;
            self.world.run_until(next);
            let done = self
                .clients
                .iter()
                .all(|&c| self.world.process_ref::<SequencerClient<S>>(c).is_done());
            if done {
                return true;
            }
            if self.world.now() >= horizon {
                return false;
            }
        }
    }

    /// Client-observed latencies (ms) of the completed requests.
    pub fn latencies(&self) -> Samples {
        let mut samples = Samples::new();
        for &c in &self.clients {
            for done in self.world.process_ref::<SequencerClient<S>>(c).completed() {
                samples.record_duration(done.latency());
            }
        }
        samples
    }

    /// Audits the run for external inconsistency and replica divergence.
    pub fn audit(&self) -> InconsistencyReport {
        let mut report = InconsistencyReport::default();
        for &c in &self.clients {
            for done in self.world.process_ref::<SequencerClient<S>>(c).completed() {
                report.requests_audited += 1;
                let inconsistent = done
                    .all_replies
                    .iter()
                    .any(|(_, pos, resp)| *pos != done.position || resp != &done.response);
                if inconsistent {
                    report.client_inconsistencies += 1;
                }
            }
        }
        let alive_orders: Vec<Vec<RequestId>> = self
            .servers
            .iter()
            .filter(|&&s| !self.world.is_crashed(s))
            .map(|&s| {
                self.world
                    .process_ref::<SequencerServer<S>>(s)
                    .delivery_order()
                    .to_vec()
            })
            .collect();
        for i in 0..alive_orders.len() {
            for j in (i + 1)..alive_orders.len() {
                let a = &alive_orders[i];
                let b = &alive_orders[j];
                let prefix_len = a.len().min(b.len());
                if a[..prefix_len] != b[..prefix_len] {
                    report.diverging_replica_pairs += 1;
                }
            }
        }
        report
    }
}

/// A deployment of the consensus-based (CT) atomic-broadcast baseline.
pub struct CtCluster<S: StateMachine> {
    /// The simulation world (exposed for fault injection).
    pub world: World<CtWire<S::Command, S::Response>>,
    /// Server identifiers.
    pub servers: Vec<ProcessId>,
    /// Client identifiers.
    pub clients: Vec<ProcessId>,
}

impl<S: StateMachine> CtCluster<S> {
    /// Builds the deployment.
    pub fn build(
        config: &BaselineConfig,
        mut make_sm: impl FnMut() -> S,
        mut workload_for: impl FnMut(usize) -> Vec<S::Command>,
    ) -> Self {
        let mut world: World<CtWire<S::Command, S::Response>> =
            World::new(config.net.clone(), config.seed);
        let group: Vec<ProcessId> = (0..config.num_servers).map(ProcessId::new).collect();
        for &id in &group {
            world.add_process(CtServer::new(
                id,
                group.clone(),
                config.fd,
                config.tick,
                make_sm(),
            ));
        }
        let clients = (0..config.num_clients)
            .map(|c| {
                world.add_process(CtClient::<S>::new(
                    ProcessId::new(config.num_servers + c),
                    group.clone(),
                    workload_for(c),
                    config.think_time,
                ))
            })
            .collect();
        CtCluster {
            world,
            servers: group,
            clients,
        }
    }

    /// Runs until all clients are done or `horizon` is reached; returns whether
    /// all clients finished.
    pub fn run_to_completion(&mut self, horizon: SimTime) -> bool {
        let slice = SimDuration::from_millis(50);
        loop {
            let next = self.world.now() + slice;
            self.world.run_until(next);
            let done = self
                .clients
                .iter()
                .all(|&c| self.world.process_ref::<CtClient<S>>(c).is_done());
            if done {
                return true;
            }
            if self.world.now() >= horizon {
                return false;
            }
        }
    }

    /// Client-observed latencies (ms) of the completed requests.
    pub fn latencies(&self) -> Samples {
        let mut samples = Samples::new();
        for &c in &self.clients {
            for done in self.world.process_ref::<CtClient<S>>(c).completed() {
                samples.record_duration(done.latency());
            }
        }
        samples
    }

    /// Checks that alive replicas delivered prefix-compatible orders.
    pub fn check_total_order(&self) -> Result<(), String> {
        let orders: Vec<Vec<RequestId>> = self
            .servers
            .iter()
            .filter(|&&s| !self.world.is_crashed(s))
            .map(|&s| {
                self.world
                    .process_ref::<CtServer<S>>(s)
                    .delivery_order()
                    .to_vec()
            })
            .collect();
        for i in 0..orders.len() {
            for j in (i + 1)..orders.len() {
                let prefix_len = orders[i].len().min(orders[j].len());
                if orders[i][..prefix_len] != orders[j][..prefix_len] {
                    return Err(format!("replicas {i} and {j} diverge"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oar::state_machine::{CounterCommand, CounterMachine};

    fn workload(n: usize) -> Vec<CounterCommand> {
        (0..n).map(|i| CounterCommand::Add(i as i64 + 1)).collect()
    }

    #[test]
    fn sequencer_cluster_failure_free_is_consistent() {
        let config = BaselineConfig::default();
        let mut cluster: SequencerCluster<CounterMachine> =
            SequencerCluster::build(&config, CounterMachine::default, |_| workload(5));
        assert!(cluster.run_to_completion(SimTime::from_secs(10)));
        let report = cluster.audit();
        assert!(report.is_consistent(), "{report:?}");
        assert_eq!(report.requests_audited, 5);
        assert_eq!(cluster.latencies().len(), 5);
    }

    #[test]
    fn ct_cluster_failure_free_is_consistent() {
        let config = BaselineConfig::default();
        let mut cluster: CtCluster<CounterMachine> =
            CtCluster::build(&config, CounterMachine::default, |_| workload(5));
        assert!(cluster.run_to_completion(SimTime::from_secs(20)));
        cluster.check_total_order().unwrap();
        assert_eq!(cluster.latencies().len(), 5);
    }

    #[test]
    fn ct_latency_is_higher_than_sequencer_latency() {
        let config = BaselineConfig {
            seed: 7,
            ..BaselineConfig::default()
        };
        let mut seq: SequencerCluster<CounterMachine> =
            SequencerCluster::build(&config, CounterMachine::default, |_| workload(20));
        assert!(seq.run_to_completion(SimTime::from_secs(20)));
        let mut ct: CtCluster<CounterMachine> =
            CtCluster::build(&config, CounterMachine::default, |_| workload(20));
        assert!(ct.run_to_completion(SimTime::from_secs(20)));
        let seq_mean = seq.latencies().mean().unwrap();
        let ct_mean = ct.latencies().mean().unwrap();
        assert!(
            ct_mean > seq_mean,
            "consensus-based broadcast ({ct_mean:.3} ms) should cost more than the sequencer ({seq_mean:.3} ms)"
        );
    }
}
