//! Experiment harness: regenerates every figure scenario and every
//! quantitative experiment of the OAR reproduction and prints the resulting
//! rows (human-readable table + JSON line per row).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p oar-bench --bin harness -- all
//! cargo run --release -p oar-bench --bin harness -- figures
//! cargo run --release -p oar-bench --bin harness -- latency
//! cargo run --release -p oar-bench --bin harness -- failover
//! cargo run --release -p oar-bench --bin harness -- undo
//! cargo run --release -p oar-bench --bin harness -- throughput
//! cargo run --release -p oar-bench --bin harness -- gc
//! cargo run --release -p oar-bench --bin harness -- soak
//! cargo run --release -p oar-bench --bin harness -- soak-smoke
//! cargo run --release -p oar-bench --bin harness -- sharded
//! cargo run --release -p oar-bench --bin harness -- sharded-smoke
//! cargo run --release -p oar-bench --bin harness -- txn
//! cargo run --release -p oar-bench --bin harness -- txn-smoke
//! cargo run --release -p oar-bench --bin harness -- adaptive
//! cargo run --release -p oar-bench --bin harness -- adaptive-smoke
//! cargo run --release -p oar-bench --bin harness -- parallel
//! cargo run --release -p oar-bench --bin harness -- parallel-smoke
//! cargo run --release -p oar-bench --bin harness -- realtime
//! cargo run --release -p oar-bench --bin harness -- realtime-smoke
//! cargo run --release -p oar-bench --bin harness -- mc
//! cargo run --release -p oar-bench --bin harness -- mc-smoke
//! cargo run --release -p oar-bench --bin harness -- fig1a|fig1b|fig2|fig3|fig4
//! ```
//!
//! `soak` / `soak-smoke` exit non-zero when the traffic-amortisation or
//! payload-GC/seen-set bounds are violated; `sharded` / `sharded-smoke` when
//! aggregate throughput fails to scale ≥2x from 1 to 4 groups at fixed
//! per-group load, or any request is misrouted; `txn` / `txn-smoke` when a
//! multi-group transaction commits non-atomically, the single-group fast
//! path sends even one wire more than the plain sharded client, or a
//! `TxnPrepare` envelope leaks onto the fast path; `adaptive` /
//! `adaptive-smoke` when the load-driven batch controller adds latency at 1
//! client (>5% over the best closed-loop static), fails to beat unbatched by
//! ≥15% at 8 clients, fails to converge (no ramp, shallow batches, windows
//! below the cap), or a skewed 2-group run does not show per-group
//! independent convergence; `parallel` / `parallel-smoke` when the
//! conflict-graph apply scheduler fails to reach ≥1.8× serial throughput at
//! 4 workers on a disjoint write batch, drifts more than 10% from serial on a
//! fully-conflicting one, or a parallel cluster's digests/responses diverge
//! from its serial twin (the smoke variants are the CI gates); `realtime` /
//! `realtime-smoke` when the wall-clock open-loop run on the `oar-rtnet`
//! backend fails to drain, measures no positive req/s, or violates the
//! total-order/at-most-once/external-consistency propositions on real
//! threads (the rows are also merged into `BENCH_throughput.json` as the
//! `realtime` group); `mc` / `mc-smoke` when the model checker's exhaustive
//! failure-free exploration truncates or violates a predicate, partial-order
//! reduction fails to prune ≥50% of the raw interleavings, either historical
//! bug is not re-found (or its counterexample does not reproduce on a plain
//! world), a fixed control arm yields a violation, or the smoke run exceeds
//! its 240 s wall-clock budget.

use oar_bench::json::ToJson;
use oar_bench::{experiments, figures};

const SEED: u64 = 20010614;

fn print_json<T: ToJson>(label: &str, rows: &[T]) {
    for row in rows {
        println!("JSON {label} {}", row.to_json());
    }
}

fn run_figures(which: Option<&str>) {
    println!("== Figure scenarios (paper Figures 1-4) ==");
    let outcomes: Vec<figures::FigureOutcome> = match which {
        Some("fig1a") => vec![figures::figure_1a(SEED)],
        Some("fig1b") => vec![figures::figure_1b(SEED), figures::figure_1b_oar(SEED)],
        Some("fig2") => vec![figures::figure_2(SEED)],
        Some("fig3") => vec![figures::figure_3(SEED)],
        Some("fig4") => vec![figures::figure_4(SEED)],
        _ => figures::all_figures(SEED),
    };
    println!(
        "{:<10} {:>7} {:>9} {:>7} {:>8} {:>14} {:>11}",
        "figure", "servers", "completed", "undone", "phase2", "client-incons.", "as-expected"
    );
    for o in &outcomes {
        println!(
            "{:<10} {:>7} {:>9} {:>7} {:>8} {:>14} {:>11}",
            o.id,
            o.servers,
            o.completed_requests,
            o.undeliveries,
            o.phase2_entries,
            o.client_inconsistencies,
            o.consistent
        );
    }
    print_json("figure", &outcomes);
}

fn run_latency() {
    println!("== T-LAT: failure-free latency vs group size ==");
    let rows = experiments::latency_experiment(&[3, 5, 7, 9], 100, SEED);
    println!(
        "{:<16} {:>3} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "protocol", "n", "reqs", "mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)"
    );
    for r in &rows {
        println!(
            "{:<16} {:>3} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            r.protocol,
            r.servers,
            r.requests,
            r.latency_ms.mean,
            r.latency_ms.p50,
            r.latency_ms.p95,
            r.latency_ms.p99
        );
    }
    print_json("latency", &rows);
}

fn run_failover() {
    println!("== T-FAILOVER: recovery time after a sequencer crash ==");
    let rows = experiments::failover_experiment(&[3, 5], &[10, 25, 50, 100], SEED);
    println!(
        "{:<3} {:>12} {:>13} {:>8} {:>11}",
        "n", "fd-timeout", "recovery(ms)", "undone", "consistent"
    );
    for r in &rows {
        println!(
            "{:<3} {:>12} {:>13.3} {:>8} {:>11}",
            r.servers, r.fd_timeout_ms, r.recovery_ms, r.undeliveries, r.consistent
        );
    }
    print_json("failover", &rows);
}

fn run_undo() {
    println!("== T-UNDO: Opt-undeliver frequency under failures ==");
    let rows = experiments::undo_experiment(SEED);
    println!(
        "{:<26} {:>3} {:>6} {:>8} {:>8} {:>10} {:>8} {:>11}",
        "scenario", "n", "reqs", "opt-dlv", "undone", "undo-rate", "phase2", "consistent"
    );
    for r in &rows {
        println!(
            "{:<26} {:>3} {:>6} {:>8} {:>8} {:>10.4} {:>8} {:>11}",
            r.scenario,
            r.servers,
            r.requests,
            r.opt_deliveries,
            r.opt_undeliveries,
            r.undo_rate,
            r.phase2_entries,
            r.consistent
        );
    }
    print_json("undo", &rows);
}

fn run_throughput() {
    println!("== T-THROUGHPUT: closed-loop throughput vs client count ==");
    let rows = experiments::throughput_experiment(3, &[1, 2, 4, 8], 50, SEED);
    println!(
        "{:<16} {:>3} {:>7} {:>6} {:>10} {:>13} {:>10} {:>11} {:>9} {:>9}",
        "protocol",
        "n",
        "clients",
        "reqs",
        "req/s(sim)",
        "mean-lat(ms)",
        "order-msgs",
        "reply-wires",
        "peak-pyld",
        "apply(us)"
    );
    for r in &rows {
        println!(
            "{:<16} {:>3} {:>7} {:>6} {:>10.1} {:>13.3} {:>10} {:>11} {:>9} {:>9}",
            r.protocol,
            r.servers,
            r.clients,
            r.requests,
            r.requests_per_second,
            r.mean_latency_ms,
            r.order_messages_sent,
            r.reply_messages_sent,
            r.peak_payloads,
            r.apply_ns / 1_000
        );
    }
    print_json("throughput", &rows);
}

fn run_soak(clients: usize, requests_per_client: usize) -> bool {
    println!(
        "== T-SOAK: {} requests across epochs (batched + pipelined + epoch cuts) ==",
        clients * requests_per_client
    );
    let row = experiments::soak_experiment(clients, requests_per_client, SEED);
    println!(
        "{:<6} {:>7} {:>6} {:>13} {:>9} {:>10} {:>9} {:>7} {:>11} {:>10} {:>10} {:>10}",
        "n",
        "clients",
        "reqs",
        "epochs/server",
        "peak-pyld",
        "final-pyld",
        "peak-seen",
        "pruned",
        "reply-wires",
        "order-msgs",
        "cns-wires",
        "consistent"
    );
    println!(
        "{:<6} {:>7} {:>6} {:>13.1} {:>9} {:>10} {:>9} {:>7} {:>11} {:>10} {:>10} {:>10}",
        row.servers,
        row.clients,
        row.requests,
        row.epochs_per_server,
        row.peak_payloads,
        row.final_payloads,
        row.peak_seen,
        row.payloads_pruned,
        row.reply_messages_sent,
        row.order_messages_sent,
        row.consensus_allocations,
        row.consistent
    );
    print_json("soak", std::slice::from_ref(&row));
    let violations = experiments::check_soak_bounds(&row, requests_per_client);
    for v in &violations {
        eprintln!("SOAK VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_recovery(clients: usize, requests_per_client: usize) -> bool {
    println!(
        "== T-RECOVER: crash + restart + snapshot/delta catch-up under {} requests ==",
        clients * requests_per_client
    );
    let row = experiments::recovery_experiment(clients, requests_per_client, SEED);
    println!(
        "{:<6} {:>7} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>5} {:>9} {:>8} {:>10}",
        "n",
        "clients",
        "reqs",
        "rejoined",
        "snap-pos",
        "delta",
        "peak-adel",
        "peak-undo",
        "compacted",
        "snaps",
        "cu-wires",
        "pyld-fet",
        "consistent"
    );
    println!(
        "{:<6} {:>7} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>5} {:>9} {:>8} {:>10}",
        row.servers,
        row.clients,
        row.requests,
        row.rejoined,
        row.catch_up_snapshot_position,
        row.catch_up_delta,
        row.peak_a_delivered,
        row.peak_undo_depth,
        row.compacted,
        row.snapshots,
        row.catch_up_requests + row.catch_up_replies,
        row.payload_fetches,
        row.consistent
    );
    print_json("recovery", std::slice::from_ref(&row));
    let violations = experiments::check_recovery_bounds(&row, requests_per_client);
    for v in &violations {
        eprintln!("RECOVERY VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_sharded(clients_per_group: usize, requests_per_client: usize) -> bool {
    println!(
        "== T-SHARD: aggregate throughput vs group count (fixed per-group load: {} clients x {} reqs) ==",
        clients_per_group, requests_per_client
    );
    let rows =
        experiments::sharded_experiment(&[1, 2, 4], clients_per_group, requests_per_client, SEED);
    println!(
        "{:<7} {:>8} {:>7} {:>6} {:>10} {:>13} {:>9} {:>9} {:>22} {:>11}",
        "groups",
        "srv/grp",
        "clients",
        "reqs",
        "req/s(sim)",
        "mean-lat(ms)",
        "misroute",
        "peak-seen",
        "order-msgs/group",
        "consistent"
    );
    for r in &rows {
        let orders: Vec<String> = r
            .per_group_order_messages
            .iter()
            .map(|o| o.to_string())
            .collect();
        println!(
            "{:<7} {:>8} {:>7} {:>6} {:>10.1} {:>13.3} {:>9} {:>9} {:>22} {:>11}",
            r.groups,
            r.servers_per_group,
            r.groups * r.clients_per_group,
            r.requests,
            r.requests_per_second,
            r.mean_latency_ms,
            r.misroutes,
            r.peak_seen,
            orders.join("/"),
            r.consistent
        );
    }
    print_json("sharded", &rows);
    let violations =
        experiments::check_sharded_bounds(&rows, clients_per_group, requests_per_client);
    for v in &violations {
        eprintln!("SHARDED VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_txn(clients: usize, txns_per_client: usize) -> bool {
    println!(
        "== T-TXN: multi-key transactions vs group count ({} clients x {} txns) ==",
        clients, txns_per_client
    );
    let rows = experiments::txn_experiment(&[1, 2, 4], clients, txns_per_client, SEED);
    println!(
        "{:<7} {:>7} {:>6} {:>11} {:>10} {:>13} {:>12} {:>9} {:>13} {:>13} {:>11}",
        "groups",
        "clients",
        "txns",
        "multi-group",
        "commits/s",
        "mean-lat(ms)",
        "p99-lat(ms)",
        "prepares",
        "fastpath-wire",
        "plain-wire",
        "consistent"
    );
    for r in &rows {
        println!(
            "{:<7} {:>7} {:>6} {:>11} {:>10.1} {:>13.3} {:>12.3} {:>9} {:>13} {:>13} {:>11}",
            r.groups,
            r.clients,
            r.txns,
            r.multi_group_txns,
            r.commits_per_second,
            r.mean_commit_latency_ms,
            r.p99_commit_latency_ms,
            r.txn_prepares,
            r.fastpath_wires_txn,
            r.fastpath_wires_plain,
            r.consistent
        );
    }
    print_json("txn", &rows);
    let violations = experiments::check_txn_bounds(&rows, clients, txns_per_client);
    for v in &violations {
        eprintln!("TXN VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_adaptive(requests_per_client: usize, repeats: usize, skew_requests: usize) -> bool {
    println!(
        "== T-ADAPTIVE: load-driven batching vs static settings ({} reqs/client, min wall of {} runs) ==",
        requests_per_client, repeats
    );
    let rows = experiments::adaptive_experiment(&[1, 8], requests_per_client, repeats, SEED);
    println!(
        "{:<10} {:>7} {:>6} {:>9} {:>10} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>6} {:>11}",
        "variant",
        "clients",
        "reqs",
        "wall(ms)",
        "req/s(sim)",
        "mean(ms)",
        "p50(ms)",
        "p99(ms)",
        "orders",
        "batch^",
        "target",
        "raises",
        "win^",
        "consistent"
    );
    for r in &rows {
        println!(
            "{:<10} {:>7} {:>6} {:>9.3} {:>10.1} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>7} {:>7} {:>7} {:>6} {:>11}",
            r.protocol,
            r.clients,
            r.requests,
            r.wall_ms,
            r.requests_per_second,
            r.mean_latency_ms,
            r.p50_latency_ms,
            r.p99_latency_ms,
            r.order_messages_sent,
            r.effective_batch_peak,
            r.batch_target,
            r.target_raises,
            r.client_window_peak,
            r.consistent
        );
    }
    print_json("adaptive", &rows);
    let mut violations = experiments::check_adaptive_bounds(&rows, requests_per_client);

    println!("== T-ADAPTIVE-SKEW: per-group convergence under skewed load (2 groups) ==");
    let skew = experiments::adaptive_skew_experiment(4, skew_requests, SEED);
    println!(
        "{:<7} {:>7} {:>6} {:>13} {:>13} {:>13} {:>13} {:>9} {:>11}",
        "groups",
        "clients",
        "reqs",
        "reqs/group",
        "target/group",
        "batch^/group",
        "raises/group",
        "misroute",
        "consistent"
    );
    let join = |v: &[u64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("/")
    };
    println!(
        "{:<7} {:>7} {:>6} {:>13} {:>13} {:>13} {:>13} {:>9} {:>11}",
        skew.groups,
        skew.clients,
        skew.requests,
        join(&skew.per_group_requests),
        join(&skew.per_group_batch_target),
        join(&skew.per_group_effective_batch),
        join(&skew.per_group_target_raises),
        skew.misroutes,
        skew.consistent
    );
    print_json("adaptive_skew", std::slice::from_ref(&skew));
    violations.extend(experiments::check_adaptive_skew_bounds(
        &skew,
        skew_requests,
    ));

    for v in &violations {
        eprintln!("ADAPTIVE VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_parallel(
    commands: usize,
    block_us: u64,
    repeats: usize,
    clients: usize,
    requests_per_client: usize,
) -> bool {
    println!(
        "== T-PARALLEL: conflict-graph apply scheduling, {} commands x ({} spin rounds + {} us blocking), min wall of {} runs ==",
        commands,
        experiments::PARALLEL_SPIN_ROUNDS,
        block_us,
        repeats
    );
    let rows = experiments::parallel_apply_experiment(
        commands,
        experiments::PARALLEL_SPIN_ROUNDS,
        block_us,
        repeats,
    );
    println!(
        "{:<12} {:>7} {:>6} {:>9} {:>6} {:>6} {:>10} {:>10} {:>8}",
        "workload",
        "workers",
        "cmds",
        "block(us)",
        "waves",
        "wave^",
        "wall(ms)",
        "ops/s",
        "matches"
    );
    for r in &rows {
        println!(
            "{:<12} {:>7} {:>6} {:>9} {:>6} {:>6} {:>10.3} {:>10.0} {:>8}",
            r.workload,
            r.workers,
            r.commands,
            r.block_us,
            r.waves,
            r.max_wave,
            r.wall_ms,
            r.ops_per_sec,
            r.matches_serial
        );
    }
    print_json("parallel", &rows);

    println!("== T-PARALLEL-CLUSTER: parallel deployment vs serial twin (same seed) ==");
    let cluster = experiments::parallel_cluster_experiment(clients, requests_per_client, SEED);
    println!(
        "{:<3} {:>7} {:>6} {:>7} {:>10} {:>10} {:>15} {:>8} {:>10} {:>11}",
        "n",
        "clients",
        "reqs",
        "workers",
        "wave-cmds",
        "apply(ms)",
        "serial-aply(ms)",
        "digests",
        "responses",
        "consistent"
    );
    println!(
        "{:<3} {:>7} {:>6} {:>7} {:>10} {:>10.3} {:>15.3} {:>8} {:>10} {:>11}",
        cluster.servers,
        cluster.clients,
        cluster.requests,
        cluster.workers,
        cluster.wave_commands,
        cluster.apply_ns as f64 / 1e6,
        cluster.serial_apply_ns as f64 / 1e6,
        cluster.digests_match,
        cluster.responses_match,
        cluster.consistent
    );
    print_json("parallel_cluster", std::slice::from_ref(&cluster));

    let violations = experiments::check_parallel_bounds(&rows, &cluster);
    for v in &violations {
        eprintln!("PARALLEL VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_realtime(clients: usize, requests_per_client: usize, interarrival_us: u64) -> bool {
    println!(
        "== T-REALTIME: wall-clock open-loop run on oar-rtnet ({} clients x {} reqs @ {} us) ==",
        clients, requests_per_client, interarrival_us
    );
    let row =
        experiments::realtime_experiment(3, clients, requests_per_client, interarrival_us, SEED);
    println!(
        "{:<3} {:>7} {:>11} {:>9} {:>6} {:>10} {:>11} {:>9} {:>9} {:>9} {:>9} {:>7} {:>11}",
        "n",
        "clients",
        "offered/s",
        "submitted",
        "reqs",
        "wall(ms)",
        "req/s(wall)",
        "mean(ms)",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
        "drained",
        "consistent"
    );
    println!(
        "{:<3} {:>7} {:>11.0} {:>9} {:>6} {:>10.1} {:>11.1} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>11}",
        row.servers,
        row.clients,
        row.offered_rate,
        row.submitted,
        row.requests,
        row.elapsed_ms,
        row.requests_per_second,
        row.latency_ms.mean,
        row.latency_ms.p50,
        row.latency_ms.p95,
        row.latency_ms.p99,
        row.completed_run,
        row.consistent
    );
    print_json("realtime", std::slice::from_ref(&row));

    // Land the wall-clock point in the committed trajectory next to the
    // `cargo bench` rows, as the `realtime` group (criterion row shape:
    // mean_ns is the mean client-observed latency here).
    let us = |ms: f64| (ms * 1_000.0).round() as u64;
    let bench_row = format!(
        concat!(
            "{{\"group\":\"realtime\",\"id\":\"openloop/{}\",\"mean_ns\":{:.1},",
            "\"min_ns\":{:.1},\"iters_per_sample\":1,\"samples\":{},\"elements\":{},",
            "\"counters\":{{\"req_per_s\":{},\"offered_per_s\":{},",
            "\"p50_latency_us\":{},\"p95_latency_us\":{},\"p99_latency_us\":{},",
            "\"submitted\":{},\"consistent\":{}}}}}"
        ),
        row.clients,
        row.latency_ms.mean * 1e6,
        row.latency_ms.min * 1e6,
        row.requests,
        row.requests,
        row.requests_per_second.round() as u64,
        row.offered_rate.round() as u64,
        us(row.latency_ms.p50),
        us(row.latency_ms.p95),
        us(row.latency_ms.p99),
        row.submitted,
        u64::from(row.consistent),
    );
    let path = oar_bench::json::bench_out_dir().join("BENCH_throughput.json");
    match oar_bench::json::merge_bench_rows(&path, "throughput", "realtime", &[bench_row]) {
        Ok(()) => println!("merged realtime row into {}", path.display()),
        Err(e) => eprintln!("could not update {}: {e}", path.display()),
    }

    let violations = experiments::check_realtime_bounds(&row, clients, requests_per_client);
    for v in &violations {
        eprintln!("REALTIME VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_reconfig(per_client: usize) -> bool {
    println!(
        "== T-RECONFIG: replica replacement, key-range migration, Merkle anti-entropy \
         ({per_client} reqs/client) =="
    );
    let start = std::time::Instant::now();
    let rows = experiments::reconfig_experiment(per_client, SEED);
    println!(
        "{:<12} {:>5} {:>7} {:>10} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7} {:>9}",
        "scenario",
        "reqs",
        "drained",
        "consistent",
        "fences",
        "rejoined",
        "catchup",
        "redir",
        "migst",
        "dups",
        "probes",
        "nodes",
        "repairs",
        "wall(ms)"
    );
    for r in &rows {
        println!(
            "{:<12} {:>5} {:>7} {:>10} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7} {:>9.0}",
            r.scenario,
            r.requests,
            r.completed_run,
            r.consistent,
            r.reconfigs_applied,
            r.rejoined,
            r.catch_up_replies,
            r.redirected,
            r.migrate_state_wires,
            r.duplicates,
            r.sync_probes,
            r.sync_node_wires,
            r.sync_repairs,
            r.wall_ms
        );
    }
    print_json("reconfig", &rows);

    // Land the reconfiguration counters in the committed trajectory next to
    // the `cargo bench` rows, as the `reconfig` group (criterion row shape:
    // mean_ns is the scenario wall-clock).
    let bench_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"group\":\"reconfig\",\"id\":\"{}/{}\",\"mean_ns\":{:.1},",
                    "\"min_ns\":{:.1},\"iters_per_sample\":1,\"samples\":1,\"elements\":{},",
                    "\"counters\":{{\"fences\":{},\"catch_up_replies\":{},",
                    "\"redirected\":{},\"migrate_state_wires\":{},\"duplicates\":{},",
                    "\"sync_node_wires\":{},\"sync_repairs\":{},\"consistent\":{}}}}}"
                ),
                r.scenario,
                per_client,
                r.wall_ms * 1e6,
                r.wall_ms * 1e6,
                r.requests,
                r.reconfigs_applied,
                r.catch_up_replies,
                r.redirected,
                r.migrate_state_wires,
                r.duplicates,
                r.sync_node_wires,
                r.sync_repairs,
                u64::from(r.consistent),
            )
        })
        .collect();
    let path = oar_bench::json::bench_out_dir().join("BENCH_throughput.json");
    match oar_bench::json::merge_bench_rows(&path, "throughput", "reconfig", &bench_rows) {
        Ok(()) => println!("merged reconfig rows into {}", path.display()),
        Err(e) => eprintln!("could not update {}: {e}", path.display()),
    }

    let mut violations = experiments::check_reconfig_bounds(&rows, per_client);
    // CI wall-clock budget: the smoke run must stay interactive.
    let elapsed = start.elapsed().as_secs_f64();
    if elapsed > 240.0 {
        violations.push(format!("wall-clock budget exceeded: {elapsed:.0}s > 240s"));
    }
    for v in &violations {
        eprintln!("RECONFIG VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_mc(smoke: bool) -> bool {
    println!(
        "== T-MC: bounded model checking over simnet ({}) ==",
        if smoke { "smoke budget" } else { "full budget" }
    );
    let start = std::time::Instant::now();
    let rows = experiments::mc_experiment(smoke);
    println!(
        "{:<14} {:>5} {:>5} {:>9} {:>11} {:>12} {:>12} {:>6} {:>9} {:>9} {:>5} {:>7} {:>9}",
        "scenario",
        "por",
        "dedup",
        "states",
        "transitions",
        "pruned-sleep",
        "pruned-dedup",
        "goals",
        "deadlocks",
        "truncated",
        "viols",
        "replays",
        "wall(ms)"
    );
    for r in &rows {
        println!(
            "{:<14} {:>5} {:>5} {:>9} {:>11} {:>12} {:>12} {:>6} {:>9} {:>9} {:>5} {:>7} {:>9.0}",
            r.label,
            r.por,
            r.dedup,
            r.states_explored,
            r.transitions,
            r.pruned_sleep,
            r.pruned_dedup,
            r.goal_states,
            r.deadlocks,
            r.truncated,
            r.violations,
            r.trace_replays,
            r.wall_ms
        );
    }
    print_json("mc", &rows);
    let mut violations = experiments::check_mc_bounds(&rows);
    // CI wall-clock budget: the smoke exploration must stay interactive.
    let budget_s = if smoke { 240.0 } else { 1800.0 };
    let elapsed = start.elapsed().as_secs_f64();
    if elapsed > budget_s {
        violations.push(format!(
            "wall-clock budget exceeded: {elapsed:.0}s > {budget_s:.0}s"
        ));
    }
    for v in &violations {
        eprintln!("MC VIOLATION: {v}");
    }
    violations.is_empty()
}

fn run_gc() {
    println!("== T-GC: §5.3 epoch-cut ablation ==");
    let rows = experiments::gc_experiment(&[None, Some(100), Some(10)], 60, SEED);
    println!(
        "{:<10} {:>6} {:>14} {:>13} {:>12} {:>11}",
        "cut-after", "reqs", "epochs/server", "mean-lat(ms)", "p99-lat(ms)", "consistent"
    );
    for r in &rows {
        let cut = r.cut_after.map_or("never".to_string(), |c| c.to_string());
        println!(
            "{:<10} {:>6} {:>14.1} {:>13.3} {:>12.3} {:>11}",
            cut, r.requests, r.epochs_per_server, r.mean_latency_ms, r.p99_latency_ms, r.consistent
        );
    }
    print_json("gc", &rows);
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "figures" => run_figures(None),
        "fig1a" | "fig1b" | "fig2" | "fig3" | "fig4" => run_figures(Some(arg.as_str())),
        "latency" => run_latency(),
        "failover" => run_failover(),
        "undo" => run_undo(),
        "throughput" => run_throughput(),
        "gc" => run_gc(),
        // The full soak: ≥ 5000 requests across epochs.
        "soak" => {
            if !run_soak(8, 640) {
                std::process::exit(1);
            }
        }
        // CI gate: a smaller soak whose amortisation/memory ceilings fail the
        // build on regression.
        "soak-smoke" => {
            if !run_soak(4, 200) {
                std::process::exit(1);
            }
        }
        // The full recovery soak: ≥ 5000 requests with a mid-run crash and
        // restart; the rejoined replica must converge by snapshot + delta
        // with retained state bounded by the compaction window.
        "recovery" => {
            if !run_recovery(8, 640) {
                std::process::exit(1);
            }
        }
        // CI gate: a smaller crash/restart/catch-up run with the same gates.
        "recovery-smoke" => {
            if !run_recovery(4, 200) {
                std::process::exit(1);
            }
        }
        // The full sharded scaling sweep (1 → 4 groups at fixed per-group
        // load); exits non-zero if aggregate throughput fails to scale ≥2x
        // from 1 to 4 groups or any request is misrouted.
        "sharded" => {
            if !run_sharded(4, 100) {
                std::process::exit(1);
            }
        }
        // CI gate: a smaller multi-group soak with the same ceilings.
        "sharded-smoke" => {
            if !run_sharded(2, 40) {
                std::process::exit(1);
            }
        }
        // The full transaction sweep: atomicity, fast-path wire equality and
        // commit latency from 1 to 4 groups.
        "txn" => {
            if !run_txn(4, 50) {
                std::process::exit(1);
            }
        }
        // CI gate: a smaller transactional sweep with the same ceilings —
        // zero atomicity violations, single-group fast-path wire counts
        // identical to the non-txn path.
        "txn-smoke" => {
            if !run_txn(2, 20) {
                std::process::exit(1);
            }
        }
        // The full adaptive-batching gate: controller vs every static
        // setting at 1 and 8 clients, plus the skewed 2-group run.
        "adaptive" => {
            if !run_adaptive(50, 5, 40) {
                std::process::exit(1);
            }
        }
        // CI gate: a smaller adaptive sweep with the same ceilings.
        "adaptive-smoke" => {
            if !run_adaptive(30, 3, 24) {
                std::process::exit(1);
            }
        }
        // The full parallel-apply gate: the wave scheduler's speedup on a
        // disjoint write batch, parity on a conflicting one, and a cluster
        // whose digests/responses must match a serial twin bit for bit.
        "parallel" => {
            if !run_parallel(96, 300, 5, 4, 48) {
                std::process::exit(1);
            }
        }
        // CI gate: a smaller parallel-apply run with the same ceilings. The
        // extra repeats keep the min-over-repeats wall-clock robust on noisy
        // shared runners (each repeat costs ~15 ms).
        "parallel-smoke" => {
            if !run_parallel(48, 200, 6, 2, 24) {
                std::process::exit(1);
            }
        }
        // The full model-checking gate: exhaustive failure-free exploration,
        // the POR ≥50% pruning proof, both historical-bug counterexamples
        // with plain-world replays, and wide-budget fixed control arms.
        "mc" => {
            if !run_mc(false) {
                std::process::exit(1);
            }
        }
        // CI gate: the same row families under a smoke state budget and a
        // 240 s wall-clock ceiling.
        "mc-smoke" => {
            if !run_mc(true) {
                std::process::exit(1);
            }
        }
        // The full reconfiguration gate: online replica replacement with a
        // further crash, key-range migration under traffic, and the Merkle
        // anti-entropy heal — with transfer-wire and at-most-once ceilings.
        "reconfig" => {
            if !run_reconfig(120) {
                std::process::exit(1);
            }
        }
        // CI gate: the same three scenarios at a smaller request count.
        "reconfig-smoke" => {
            if !run_reconfig(60) {
                std::process::exit(1);
            }
        }
        // The full wall-clock gate: a real-time open-loop run on the
        // threaded backend — 4 generators offering 500 req/s each for ~2 s.
        "realtime" => {
            if !run_realtime(4, 1000, 2_000) {
                std::process::exit(1);
            }
        }
        // CI gate: a shorter wall-clock run (2 generators x 200 requests at
        // 250 req/s each, ~0.8 s) with the same ceilings.
        "realtime-smoke" => {
            if !run_realtime(2, 200, 4_000) {
                std::process::exit(1);
            }
        }
        "all" => {
            run_figures(None);
            run_latency();
            run_failover();
            run_undo();
            run_throughput();
            run_gc();
            let soak_ok = run_soak(8, 640);
            let recovery_ok = run_recovery(8, 640);
            let sharded_ok = run_sharded(4, 100);
            let txn_ok = run_txn(4, 50);
            let adaptive_ok = run_adaptive(50, 5, 40);
            let parallel_ok = run_parallel(96, 300, 5, 4, 48);
            let reconfig_ok = run_reconfig(120);
            let realtime_ok = run_realtime(4, 1000, 2_000);
            let mc_ok = run_mc(false);
            if !soak_ok
                || !recovery_ok
                || !sharded_ok
                || !txn_ok
                || !adaptive_ok
                || !parallel_ok
                || !reconfig_ok
                || !realtime_ok
                || !mc_ok
            {
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("expected: all | figures | fig1a | fig1b | fig2 | fig3 | fig4 | latency | failover | undo | throughput | gc | soak | soak-smoke | recovery | recovery-smoke | sharded | sharded-smoke | txn | txn-smoke | adaptive | adaptive-smoke | parallel | parallel-smoke | reconfig | reconfig-smoke | realtime | realtime-smoke | mc | mc-smoke");
            std::process::exit(2);
        }
    }
}
