//! Hand-rolled JSON emission for the experiment rows.
//!
//! The build environment has no crates.io access, so instead of `serde_json`
//! the harness serialises its (small, flat) row types through the [`ToJson`]
//! trait below. Output is plain JSON objects, one per row, identical in shape
//! to what a serde derive would produce.

use oar_simnet::Summary;

use crate::experiments::{
    AdaptiveRow, AdaptiveSkewRow, FailoverRow, GcRow, LatencyRow, McRow, ParallelClusterRow,
    ParallelRow, RealtimeRow, ReconfigRow, RecoveryRow, ShardedRow, SoakRow, ThroughputRow, TxnRow,
    UndoRow,
};
use crate::figures::FigureOutcome;

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> String;
}

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl ToJson for Summary {
    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"std_dev\":{}}}",
            self.count,
            f(self.mean),
            f(self.min),
            f(self.p50),
            f(self.p95),
            f(self.p99),
            f(self.max),
            f(self.std_dev),
        )
    }
}

impl ToJson for McRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"scenario\":\"{}\",\"por\":{},\"dedup\":{},",
                "\"states_explored\":{},\"transitions\":{},\"pruned_sleep\":{},",
                "\"pruned_dedup\":{},\"goal_states\":{},\"deadlocks\":{},",
                "\"truncated\":{},\"violations\":{},\"violation_kind\":\"{}\",",
                "\"trace_replays\":{},\"wall_ms\":{}}}"
            ),
            escape(&self.label),
            escape(&self.scenario),
            self.por,
            self.dedup,
            self.states_explored,
            self.transitions,
            self.pruned_sleep,
            self.pruned_dedup,
            self.goal_states,
            self.deadlocks,
            self.truncated,
            self.violations,
            escape(&self.violation_kind),
            self.trace_replays,
            f(self.wall_ms),
        )
    }
}

impl ToJson for ReconfigRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"requests\":{},\"completed_run\":{},",
                "\"consistent\":{},\"reconfigs_applied\":{},\"rejoined\":{},",
                "\"catch_up_replies\":{},\"redirected\":{},",
                "\"migrate_state_wires\":{},\"duplicates\":{},\"sync_probes\":{},",
                "\"sync_node_wires\":{},\"sync_repairs\":{},\"wall_ms\":{}}}"
            ),
            escape(&self.scenario),
            self.requests,
            self.completed_run,
            self.consistent,
            self.reconfigs_applied,
            self.rejoined,
            self.catch_up_replies,
            self.redirected,
            self.migrate_state_wires,
            self.duplicates,
            self.sync_probes,
            self.sync_node_wires,
            self.sync_repairs,
            f(self.wall_ms),
        )
    }
}

impl ToJson for LatencyRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":\"{}\",\"servers\":{},\"requests\":{},\"latency_ms\":{}}}",
            escape(&self.protocol),
            self.servers,
            self.requests,
            self.latency_ms.to_json(),
        )
    }
}

impl ToJson for FailoverRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"servers\":{},\"fd_timeout_ms\":{},\"recovery_ms\":{},\"undeliveries\":{},\"consistent\":{}}}",
            self.servers,
            f(self.fd_timeout_ms),
            f(self.recovery_ms),
            self.undeliveries,
            self.consistent,
        )
    }
}

impl ToJson for UndoRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"servers\":{},\"scenario\":\"{}\",\"requests\":{},\"opt_deliveries\":{},\"opt_undeliveries\":{},\"undo_rate\":{},\"phase2_entries\":{},\"consistent\":{}}}",
            self.servers,
            escape(&self.scenario),
            self.requests,
            self.opt_deliveries,
            self.opt_undeliveries,
            f(self.undo_rate),
            self.phase2_entries,
            self.consistent,
        )
    }
}

impl ToJson for ThroughputRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"protocol\":\"{}\",\"servers\":{},\"clients\":{},\"requests\":{},",
                "\"requests_per_second\":{},\"mean_latency_ms\":{},",
                "\"p50_latency_ms\":{},\"p95_latency_ms\":{},\"p99_latency_ms\":{},",
                "\"order_messages_sent\":{},\"reply_messages_sent\":{},",
                "\"replies_sent\":{},\"consensus_allocations\":{},",
                "\"consensus_messages\":{},\"peak_payloads\":{},\"apply_ns\":{}}}"
            ),
            escape(&self.protocol),
            self.servers,
            self.clients,
            self.requests,
            f(self.requests_per_second),
            f(self.mean_latency_ms),
            f(self.p50_latency_ms),
            f(self.p95_latency_ms),
            f(self.p99_latency_ms),
            self.order_messages_sent,
            self.reply_messages_sent,
            self.replies_sent,
            self.consensus_allocations,
            self.consensus_messages,
            self.peak_payloads,
            self.apply_ns,
        )
    }
}

impl ToJson for ParallelRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"workers\":{},\"commands\":{},",
                "\"spin_rounds\":{},\"block_us\":{},\"waves\":{},",
                "\"max_wave\":{},\"wall_ms\":{},\"ops_per_sec\":{},",
                "\"matches_serial\":{}}}"
            ),
            escape(&self.workload),
            self.workers,
            self.commands,
            self.spin_rounds,
            self.block_us,
            self.waves,
            self.max_wave,
            f(self.wall_ms),
            f(self.ops_per_sec),
            self.matches_serial,
        )
    }
}

impl ToJson for ParallelClusterRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"servers\":{},\"clients\":{},\"requests\":{},",
                "\"workers\":{},\"wave_commands\":{},\"apply_ns\":{},",
                "\"serial_apply_ns\":{},\"digests_match\":{},",
                "\"responses_match\":{},\"consistent\":{}}}"
            ),
            self.servers,
            self.clients,
            self.requests,
            self.workers,
            self.wave_commands,
            self.apply_ns,
            self.serial_apply_ns,
            self.digests_match,
            self.responses_match,
            self.consistent,
        )
    }
}

impl ToJson for AdaptiveRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"protocol\":\"{}\",\"clients\":{},\"requests\":{},",
                "\"wall_ms\":{},\"requests_per_second\":{},",
                "\"mean_latency_ms\":{},\"p50_latency_ms\":{},",
                "\"p95_latency_ms\":{},\"p99_latency_ms\":{},",
                "\"order_messages_sent\":{},\"reply_messages_sent\":{},",
                "\"effective_batch_peak\":{},\"batch_target\":{},",
                "\"target_raises\":{},\"target_drops\":{},",
                "\"deadline_flushes\":{},\"client_window_peak\":{},",
                "\"consistent\":{}}}"
            ),
            escape(&self.protocol),
            self.clients,
            self.requests,
            f(self.wall_ms),
            f(self.requests_per_second),
            f(self.mean_latency_ms),
            f(self.p50_latency_ms),
            f(self.p95_latency_ms),
            f(self.p99_latency_ms),
            self.order_messages_sent,
            self.reply_messages_sent,
            self.effective_batch_peak,
            self.batch_target,
            self.target_raises,
            self.target_drops,
            self.deadline_flushes,
            self.client_window_peak,
            self.consistent,
        )
    }
}

impl ToJson for AdaptiveSkewRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"groups\":{},\"clients\":{},\"requests\":{},",
                "\"per_group_requests\":{},\"per_group_batch_target\":{},",
                "\"per_group_effective_batch\":{},\"per_group_target_raises\":{},",
                "\"misroutes\":{},\"consistent\":{}}}"
            ),
            self.groups,
            self.clients,
            self.requests,
            u64_array(&self.per_group_requests),
            u64_array(&self.per_group_batch_target),
            u64_array(&self.per_group_effective_batch),
            u64_array(&self.per_group_target_raises),
            self.misroutes,
            self.consistent,
        )
    }
}

impl ToJson for SoakRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"servers\":{},\"clients\":{},\"requests\":{},",
                "\"epochs_per_server\":{},\"peak_payloads\":{},",
                "\"final_payloads\":{},\"peak_seen\":{},\"final_seen\":{},",
                "\"payloads_pruned\":{},",
                "\"reply_messages_sent\":{},\"replies_sent\":{},",
                "\"order_messages_sent\":{},\"consensus_allocations\":{},",
                "\"consensus_messages\":{},\"consistent\":{}}}"
            ),
            self.servers,
            self.clients,
            self.requests,
            f(self.epochs_per_server),
            self.peak_payloads,
            self.final_payloads,
            self.peak_seen,
            self.final_seen,
            self.payloads_pruned,
            self.reply_messages_sent,
            self.replies_sent,
            self.order_messages_sent,
            self.consensus_allocations,
            self.consensus_messages,
            self.consistent,
        )
    }
}

impl ToJson for RecoveryRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"servers\":{},\"clients\":{},\"requests\":{},",
                "\"consistent\":{},\"rejoined\":{},",
                "\"catch_up_snapshot_position\":{},\"catch_up_delta\":{},",
                "\"rejoined_settled\":{},\"peak_a_delivered\":{},",
                "\"peak_undo_depth\":{},\"snapshots\":{},\"compacted\":{},",
                "\"catch_up_requests\":{},\"catch_up_replies\":{},",
                "\"payload_fetches\":{}}}"
            ),
            self.servers,
            self.clients,
            self.requests,
            self.consistent,
            self.rejoined,
            self.catch_up_snapshot_position,
            self.catch_up_delta,
            self.rejoined_settled,
            self.peak_a_delivered,
            self.peak_undo_depth,
            self.snapshots,
            self.compacted,
            self.catch_up_requests,
            self.catch_up_replies,
            self.payload_fetches,
        )
    }
}

fn u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

impl ToJson for ShardedRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"groups\":{},\"servers_per_group\":{},",
                "\"clients_per_group\":{},\"requests\":{},",
                "\"requests_per_second\":{},\"mean_latency_ms\":{},",
                "\"misroutes\":{},\"peak_seen\":{},",
                "\"per_group_order_messages\":{},",
                "\"per_group_reply_messages\":{},",
                "\"per_group_wire_sent\":{},\"consistent\":{}}}"
            ),
            self.groups,
            self.servers_per_group,
            self.clients_per_group,
            self.requests,
            f(self.requests_per_second),
            f(self.mean_latency_ms),
            self.misroutes,
            self.peak_seen,
            u64_array(&self.per_group_order_messages),
            u64_array(&self.per_group_reply_messages),
            u64_array(&self.per_group_wire_sent),
            self.consistent,
        )
    }
}

impl ToJson for TxnRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"groups\":{},\"clients\":{},\"txns\":{},",
                "\"multi_group_txns\":{},\"commits_per_second\":{},",
                "\"mean_commit_latency_ms\":{},\"p99_commit_latency_ms\":{},",
                "\"txn_prepares\":{},\"misroutes\":{},",
                "\"fastpath_wires_txn\":{},\"fastpath_wires_plain\":{},",
                "\"fastpath_txn_prepares\":{},\"fastpath_latency_ms\":{},",
                "\"plain_latency_ms\":{},\"consistent\":{}}}"
            ),
            self.groups,
            self.clients,
            self.txns,
            self.multi_group_txns,
            f(self.commits_per_second),
            f(self.mean_commit_latency_ms),
            f(self.p99_commit_latency_ms),
            self.txn_prepares,
            self.misroutes,
            self.fastpath_wires_txn,
            self.fastpath_wires_plain,
            self.fastpath_txn_prepares,
            f(self.fastpath_latency_ms),
            f(self.plain_latency_ms),
            self.consistent,
        )
    }
}

impl ToJson for GcRow {
    fn to_json(&self) -> String {
        let cut = self.cut_after.map_or("null".to_string(), |c| c.to_string());
        format!(
            "{{\"cut_after\":{},\"requests\":{},\"epochs_per_server\":{},\"mean_latency_ms\":{},\"p99_latency_ms\":{},\"consistent\":{}}}",
            cut,
            self.requests,
            f(self.epochs_per_server),
            f(self.mean_latency_ms),
            f(self.p99_latency_ms),
            self.consistent,
        )
    }
}

impl ToJson for RealtimeRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"servers\":{},\"clients\":{},\"offered_rate\":{},",
                "\"submitted\":{},\"requests\":{},\"elapsed_ms\":{},",
                "\"requests_per_second\":{},\"latency_ms\":{},",
                "\"completed_run\":{},\"consistent\":{}}}"
            ),
            self.servers,
            self.clients,
            f(self.offered_rate),
            self.submitted,
            self.requests,
            f(self.elapsed_ms),
            f(self.requests_per_second),
            self.latency_ms.to_json(),
            self.completed_run,
            self.consistent,
        )
    }
}

/// Merges result rows into a criterion-written `BENCH_<bench>.json` file.
///
/// The vendored criterion writes these files with one result object per line
/// (see `vendor/criterion`); this helper relies on that layout: every line
/// holding a `"group":"<group>"` row is replaced by `rows` (each element one
/// serialised result object), other groups' rows are preserved, and a
/// missing or foreign file is rewritten from scratch. This is how the
/// `harness realtime` experiment lands its wall-clock rows next to the
/// `cargo bench` trajectory in `BENCH_throughput.json` without clobbering
/// it.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be read (other than not
/// existing) or written.
pub fn merge_bench_rows(
    path: &std::path::Path,
    bench: &str,
    group: &str,
    rows: &[String],
) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(contents) => contents,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let marker = format!("\"group\":\"{group}\"");
    let mut kept: Vec<String> = existing
        .lines()
        .filter(|line| line.starts_with("{\"group\":") && !line.contains(&marker))
        .map(|line| line.trim_end_matches(',').to_string())
        .collect();
    kept.extend(rows.iter().cloned());
    let json = format!(
        "{{\"bench\":\"{}\",\"results\":[\n{}\n]}}\n",
        escape(bench),
        kept.join(",\n")
    );
    std::fs::write(path, json)
}

/// The directory `BENCH_*.json` files live in: `OAR_BENCH_OUT_DIR` when set,
/// otherwise the nearest ancestor of the current directory whose
/// `Cargo.toml` declares `[workspace]` — the same resolution the vendored
/// criterion uses, so the harness and `cargo bench` write to the same place.
pub fn bench_out_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("OAR_BENCH_OUT_DIR") {
        return dir.into();
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if let Ok(contents) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if contents.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return ".".into();
        }
    }
}

impl ToJson for FigureOutcome {
    fn to_json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"servers\":{},\"completed_requests\":{},\"undeliveries\":{},\"phase2_entries\":{},\"client_inconsistencies\":{},\"consistent\":{},\"timeline\":\"{}\"}}",
            escape(&self.id),
            self.servers,
            self.completed_requests,
            self.undeliveries,
            self.phase2_entries,
            self.client_inconsistencies,
            self.consistent,
            escape(&self.timeline),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn summary_round_trips_shape() {
        let s = Summary {
            count: 2,
            mean: 1.5,
            min: 1.0,
            p50: 1.5,
            p95: 2.0,
            p99: 2.0,
            max: 2.0,
            std_dev: 0.5,
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"mean\":1.5"));
        assert!(j.contains("\"count\":2"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
    }

    #[test]
    fn u64_arrays_render_as_json() {
        assert_eq!(u64_array(&[]), "[]");
        assert_eq!(u64_array(&[1, 2, 3]), "[1,2,3]");
    }

    #[test]
    fn parallel_row_shape() {
        let row = ParallelRow {
            workload: "disjoint".to_string(),
            workers: 4,
            commands: 64,
            spin_rounds: 2000,
            block_us: 250,
            waves: 1,
            max_wave: 64,
            wall_ms: 5.5,
            ops_per_sec: 11636.0,
            matches_serial: true,
        };
        let j = row.to_json();
        assert!(j.contains("\"workload\":\"disjoint\""));
        assert!(j.contains("\"max_wave\":64"));
        assert!(j.contains("\"matches_serial\":true"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn merge_bench_rows_replaces_only_its_group() {
        let dir = std::env::temp_dir().join(format!("oar-bench-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_throughput.json");
        std::fs::write(
            &path,
            concat!(
                "{\"bench\":\"throughput\",\"results\":[\n",
                "{\"group\":\"oar_throughput\",\"id\":\"unbatched/1\",\"mean_ns\":1.0},\n",
                "{\"group\":\"realtime\",\"id\":\"openloop/2\",\"mean_ns\":2.0}\n",
                "]}\n"
            ),
        )
        .unwrap();
        let fresh = "{\"group\":\"realtime\",\"id\":\"openloop/4\",\"mean_ns\":3.0}".to_string();
        merge_bench_rows(&path, "throughput", "realtime", &[fresh]).unwrap();
        let merged = std::fs::read_to_string(&path).unwrap();
        assert!(merged.contains("\"id\":\"unbatched/1\""), "{merged}");
        assert!(merged.contains("\"id\":\"openloop/4\""), "{merged}");
        assert!(!merged.contains("\"id\":\"openloop/2\""), "{merged}");
        // The merged file still parses as one row per line between the
        // header and the footer, so a second merge round-trips.
        merge_bench_rows(&path, "throughput", "realtime", &[]).unwrap();
        let stripped = std::fs::read_to_string(&path).unwrap();
        assert!(stripped.contains("\"id\":\"unbatched/1\""));
        assert!(!stripped.contains("\"group\":\"realtime\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_bench_rows_creates_missing_file() {
        let dir = std::env::temp_dir().join(format!("oar-bench-create-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_fresh.json");
        let row = "{\"group\":\"realtime\",\"id\":\"openloop/1\",\"mean_ns\":1.0}".to_string();
        merge_bench_rows(&path, "fresh", "realtime", &[row]).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("{\"bench\":\"fresh\",\"results\":["));
        assert!(written.contains("\"id\":\"openloop/1\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_row_shape() {
        let row = ShardedRow {
            groups: 2,
            servers_per_group: 3,
            clients_per_group: 2,
            requests: 80,
            requests_per_second: 1000.0,
            mean_latency_ms: 0.5,
            misroutes: 0,
            peak_seen: 40,
            per_group_order_messages: vec![5, 6],
            per_group_reply_messages: vec![30, 31],
            per_group_wire_sent: vec![100, 110],
            consistent: true,
        };
        let j = row.to_json();
        assert!(j.contains("\"per_group_order_messages\":[5,6]"));
        assert!(j.contains("\"misroutes\":0"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
