//! Reproductions of the paper's execution-scenario figures (Figures 1–4).
//!
//! Each function builds the deterministic fault schedule that produces the
//! figure's behaviour, runs it, checks the properties the figure illustrates
//! and returns a [`FigureOutcome`] with the measured facts plus a textual
//! timeline (the textual counterpart of the paper's space-time diagrams).
//!
//! The scenarios are also exercised as integration tests
//! (`tests/integration/tests/figures.rs`).

use oar::cluster::{Cluster, ClusterConfig};
use oar::{OarClient, OarConfig};
use oar_apps::stack::{StackCommand, StackMachine, StackResponse};
use oar_baselines::{BaselineConfig, SequencerCluster};
use oar_fd::FdConfig;
use oar_simnet::{LatencyModel, LinkConfig, NetConfig, SimDuration, SimTime};

/// The measured facts of one figure scenario.
#[derive(Clone, Debug)]
pub struct FigureOutcome {
    /// Figure identifier ("fig1a", "fig2", …).
    pub id: String,
    /// Number of server replicas.
    pub servers: usize,
    /// Requests completed by clients.
    pub completed_requests: usize,
    /// Opt-undeliver events across all servers.
    pub undeliveries: u64,
    /// Phase-2 entries across all servers.
    pub phase2_entries: u64,
    /// Client-visible inconsistencies (only meaningful for the unsafe
    /// fixed-sequencer baseline of Figure 1b).
    pub client_inconsistencies: usize,
    /// Whether every safety check of the scenario passed.
    pub consistent: bool,
    /// Human-readable annotation timeline of the run.
    pub timeline: String,
}

fn stack_net() -> NetConfig {
    NetConfig::constant(SimDuration::from_micros(100))
}

/// Figure 1(a): the fixed-sequencer baseline in a good run — the replicated
/// stack stays consistent and the client's adopted replies are final.
pub fn figure_1a(seed: u64) -> FigureOutcome {
    let config = BaselineConfig {
        num_servers: 3,
        num_clients: 2,
        net: stack_net(),
        seed,
        ..BaselineConfig::default()
    };
    let mut cluster: SequencerCluster<StackMachine> =
        SequencerCluster::build(&config, StackMachine::new, |client| match client {
            0 => vec![StackCommand::Push(7), StackCommand::Push(3)],
            _ => vec![StackCommand::Pop],
        });
    cluster.run_to_completion(SimTime::from_secs(5));
    let report = cluster.audit();
    FigureOutcome {
        id: "fig1a".into(),
        servers: 3,
        completed_requests: report.requests_audited,
        undeliveries: 0,
        phase2_entries: 0,
        client_inconsistencies: report.client_inconsistencies,
        consistent: report.is_consistent(),
        timeline: cluster.world.tracer().render_timeline(),
    }
}

/// Figure 1(b): the fixed-sequencer baseline in the *inconsistent* run — the
/// sequencer replies and is then lost before its ordering reaches the other
/// replicas; the new sequencer picks a different order and the reply the client
/// already adopted becomes inconsistent (external inconsistency).
pub fn figure_1b(seed: u64) -> FigureOutcome {
    let config = BaselineConfig {
        num_servers: 3,
        num_clients: 3,
        net: stack_net(),
        fd: FdConfig::with_timeout(SimDuration::from_millis(25)),
        seed,
        ..BaselineConfig::default()
    };
    // client 3 (setup) pushes y=7; client 4 pushes x=3; client 5 pops.
    let mut cluster: SequencerCluster<StackMachine> =
        SequencerCluster::build(&config, StackMachine::new, |client| match client {
            0 => vec![StackCommand::Push(7)],
            1 => vec![StackCommand::Push(3)],
            _ => vec![StackCommand::Pop],
        });
    let [p0, p1, p2] = [cluster.servers[0], cluster.servers[1], cluster.servers[2]];
    let clients = cluster.clients.clone();
    // The push(x) of client 1 travels slowly towards p1 and p2, so after the
    // fail-over the new sequencer sees the pop first.
    let slow = LinkConfig::reliable(LatencyModel::Constant(SimDuration::from_millis(3)));
    cluster.world.network_mut().set_link(clients[1], p1, slow);
    cluster.world.network_mut().set_link(clients[1], p2, slow);
    // p0 and the clients are cut off from p1 and p2: p0 orders and replies on
    // its own, then crashes; p1 and p2 take over with a different order.
    let mut group_a = vec![p0];
    group_a.extend(clients.iter().copied());
    cluster.world.partition_now(vec![group_a, vec![p1, p2]]);
    cluster.world.schedule_crash(p0, SimTime::from_millis(30));
    cluster.world.schedule_heal(SimTime::from_millis(50));
    cluster.run_to_completion(SimTime::from_secs(10));
    // The clients adopted p0's replies long before the fail-over; keep the
    // simulation running so the new sequencer's (re-)ordering and the late
    // replies it produces reach the clients and can be audited.
    cluster.world.run_until(SimTime::from_millis(300));
    let report = cluster.audit();
    FigureOutcome {
        id: "fig1b".into(),
        servers: 3,
        completed_requests: report.requests_audited,
        undeliveries: 0,
        phase2_entries: 0,
        client_inconsistencies: report.client_inconsistencies,
        // Figure 1b *demonstrates* the inconsistency, so "consistent" here
        // records whether the expected anomaly was indeed produced.
        consistent: report.client_inconsistencies > 0,
        timeline: cluster.world.tracer().render_timeline(),
    }
}

fn counter_workloads(client: usize) -> Vec<oar::state_machine::CounterCommand> {
    use oar::state_machine::CounterCommand;
    match client {
        0 => vec![CounterCommand::Add(1), CounterCommand::Add(2)],
        1 => vec![CounterCommand::Add(3)],
        _ => vec![CounterCommand::Add(4)],
    }
}

/// Figure 2: OAR with no failure nor suspicion — every request is
/// Opt-delivered in the sequencer order, phase 2 never runs, nothing is undone.
pub fn figure_2(seed: u64) -> FigureOutcome {
    use oar::state_machine::CounterMachine;
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 3,
        net: NetConfig::lan(),
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, counter_workloads);
    let done = cluster.run_to_completion(SimTime::from_secs(5));
    let consistent = done
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok()
        && cluster.total_phase2_entries() == 0
        && cluster.total_undeliveries() == 0;
    FigureOutcome {
        id: "fig2".into(),
        servers: 3,
        completed_requests: cluster.completed_requests().len(),
        undeliveries: cluster.total_undeliveries(),
        phase2_entries: cluster.total_phase2_entries(),
        client_inconsistencies: 0,
        consistent,
        timeline: cluster.world.tracer().render_timeline(),
    }
}

/// Figure 3: the sequencer crashes after ordering the last requests; a
/// majority already Opt-delivered them, so the conservative phase confirms the
/// optimistic order and **no Opt-undelivery** happens.
pub fn figure_3(seed: u64) -> FigureOutcome {
    use oar::state_machine::{CounterCommand, CounterMachine};
    let oar_config = OarConfig::with_fd_timeout(SimDuration::from_millis(25));
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 3,
        net: NetConfig::constant(SimDuration::from_micros(100)),
        oar: oar_config,
        seed,
        // m1/m2 are issued immediately; m3 and m4 only once the partition
        // below is installed (at 3 ms).
        client_start_delays: vec![
            SimDuration::ZERO,
            SimDuration::from_millis(5),
            SimDuration::from_micros(5_050),
        ],
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |client| match client {
            0 => vec![CounterCommand::Add(1), CounterCommand::Add(2)], // m1, m2
            1 => vec![CounterCommand::Add(3)],                         // m3
            _ => vec![CounterCommand::Add(4)],                         // m4
        });
    let [p0, p1, p2] = [cluster.servers[0], cluster.servers[1], cluster.servers[2]];
    let clients = cluster.clients.clone();
    // m3/m4 are issued while p2 is partitioned away; the sequencer p0 and p1
    // Opt-deliver them (a majority), then p0 crashes.
    let mut group_a = vec![p0, p1];
    group_a.extend(clients.iter().copied());
    cluster
        .world
        .schedule_partition(SimTime::from_millis(3), vec![group_a, vec![p2]]);
    cluster.world.schedule_crash(p0, SimTime::from_millis(8));
    cluster.world.schedule_heal(SimTime::from_millis(60));
    let done = cluster.run_to_completion(SimTime::from_secs(20));
    // The clients adopt their replies from the optimistic phase well before the
    // partition heals; keep simulating so p2 catches up through the
    // conservative phase and the epoch closes everywhere.
    let settle = cluster.world.now() + SimDuration::from_millis(300);
    cluster.world.run_until(settle);
    let consistent = done
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok()
        && cluster.total_undeliveries() == 0
        && cluster.total_phase2_entries() > 0;
    FigureOutcome {
        id: "fig3".into(),
        servers: 3,
        completed_requests: cluster.completed_requests().len(),
        undeliveries: cluster.total_undeliveries(),
        phase2_entries: cluster.total_phase2_entries(),
        client_inconsistencies: 0,
        consistent,
        timeline: cluster.world.tracer().render_timeline(),
    }
}

/// Figure 4: the sequencer crashes while only a (suspected, partitioned)
/// minority received its last ordering. The conservative phase excludes that
/// minority's optimistic order, so those servers must **Opt-undeliver** — and
/// the clients, having never reached a majority weight on the optimistic
/// replies, adopt only the final order (external consistency).
///
/// The paper sketches this with n = 4 and the relaxed estimate-collection rule
/// of \[Fel98\]; with the default uniform-agreement consensus the same behaviour
/// needs n = 5 (see `DESIGN.md` §2), which is what this scenario uses.
pub fn figure_4(seed: u64) -> FigureOutcome {
    use oar::state_machine::{CounterCommand, CounterMachine};
    let oar_config = OarConfig::with_fd_timeout(SimDuration::from_millis(25));
    let config = ClusterConfig {
        num_servers: 5,
        num_clients: 3,
        net: NetConfig::constant(SimDuration::from_micros(100)),
        oar: oar_config,
        seed,
        // m1/m2 are issued immediately; m3 and m4 only once the minority
        // partition below is installed (at 3 ms), so only p0 and p1 ever see
        // the optimistic ordering of m3/m4.
        client_start_delays: vec![
            SimDuration::ZERO,
            SimDuration::from_millis(5),
            SimDuration::from_micros(5_050),
        ],
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |client| match client {
            0 => vec![CounterCommand::Add(1), CounterCommand::Add(2)], // m1, m2
            1 => vec![CounterCommand::Add(3)],                         // m3
            _ => vec![CounterCommand::Add(4)],                         // m4
        });
    let servers = cluster.servers.clone();
    let clients = cluster.clients.clone();
    let minority = vec![servers[0], servers[1], clients[1], clients[2]];
    let majority = vec![servers[2], servers[3], servers[4], clients[0]];
    cluster
        .world
        .schedule_partition(SimTime::from_millis(3), vec![minority, majority]);
    cluster
        .world
        .schedule_crash(servers[0], SimTime::from_millis(8));
    cluster.world.schedule_heal(SimTime::from_millis(120));
    let done = cluster.run_to_completion(SimTime::from_secs(30));
    // Let the reconciliation finish (p1's Opt-undeliveries and the epoch close
    // can happen shortly after the last client adopted its reply).
    let settle = cluster.world.now() + SimDuration::from_millis(300);
    cluster.world.run_until(settle);
    let undeliveries = cluster.total_undeliveries();
    let consistent = done
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok()
        && undeliveries > 0;
    FigureOutcome {
        id: "fig4".into(),
        servers: 5,
        completed_requests: cluster.completed_requests().len(),
        undeliveries,
        phase2_entries: cluster.total_phase2_entries(),
        client_inconsistencies: 0,
        consistent,
        timeline: cluster.world.tracer().render_timeline(),
    }
}

/// The OAR counterpart of Figure 1(b): the same adversarial schedule run
/// against OAR with the replicated stack. The client can no longer adopt the
/// sequencer-only reply (its weight is below the majority threshold), so
/// external consistency is preserved.
pub fn figure_1b_oar(seed: u64) -> FigureOutcome {
    let oar_config = OarConfig::with_fd_timeout(SimDuration::from_millis(25));
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 3,
        net: stack_net(),
        oar: oar_config,
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<StackMachine> =
        Cluster::build(&config, StackMachine::new, |client| match client {
            0 => vec![StackCommand::Push(7)],
            1 => vec![StackCommand::Push(3)],
            _ => vec![StackCommand::Pop],
        });
    let [p0, p1, p2] = [cluster.servers[0], cluster.servers[1], cluster.servers[2]];
    let clients = cluster.clients.clone();
    let mut group_a = vec![p0];
    group_a.extend(clients.iter().copied());
    cluster.world.partition_now(vec![group_a, vec![p1, p2]]);
    cluster.world.schedule_crash(p0, SimTime::from_millis(30));
    cluster.world.schedule_heal(SimTime::from_millis(50));
    let done = cluster.run_to_completion(SimTime::from_secs(30));
    // The pop client must have adopted a response consistent with the final
    // replicated state.
    let pop_ok = cluster
        .completed_requests()
        .iter()
        .filter_map(|r| match &r.response {
            StackResponse::Popped(v) => Some(*v),
            _ => None,
        })
        .all(|popped| {
            // The final order is whatever the surviving majority delivered; the
            // adopted pop must match it (checked in detail by
            // check_external_consistency below).
            popped.is_some() || popped.is_none()
        });
    let consistent = done
        && pop_ok
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok();
    FigureOutcome {
        id: "fig1b-oar".into(),
        servers: 3,
        completed_requests: cluster.completed_requests().len(),
        undeliveries: cluster.total_undeliveries(),
        phase2_entries: cluster.total_phase2_entries(),
        client_inconsistencies: 0,
        consistent,
        timeline: cluster.world.tracer().render_timeline(),
    }
}

/// Runs every figure scenario and returns the outcomes.
pub fn all_figures(seed: u64) -> Vec<FigureOutcome> {
    vec![
        figure_1a(seed),
        figure_1b(seed),
        figure_1b_oar(seed),
        figure_2(seed),
        figure_3(seed),
        figure_4(seed),
    ]
}

/// Helper used by the clients: unused placeholder to keep `OarClient` import
/// alive in docs.
#[doc(hidden)]
pub fn _client_type_holder() -> Option<&'static OarClient<StackMachine>> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_is_failure_free() {
        let out = figure_2(11);
        assert!(out.consistent, "{out:?}");
        assert_eq!(out.undeliveries, 0);
        assert_eq!(out.phase2_entries, 0);
        assert_eq!(out.completed_requests, 4);
    }

    #[test]
    fn figure_3_has_phase2_but_no_undo() {
        let out = figure_3(11);
        assert!(out.consistent, "{out:?}");
        assert_eq!(out.undeliveries, 0);
        assert!(out.phase2_entries > 0);
    }

    #[test]
    fn figure_4_produces_undeliveries_without_breaking_clients() {
        let out = figure_4(11);
        assert!(out.consistent, "{out:?}");
        assert!(out.undeliveries > 0);
    }

    #[test]
    fn figure_1b_baseline_exposes_inconsistency_and_oar_does_not() {
        let unsafe_run = figure_1b(11);
        assert!(
            unsafe_run.client_inconsistencies > 0,
            "the fixed-sequencer baseline should expose external inconsistency: {unsafe_run:?}"
        );
        let safe_run = figure_1b_oar(11);
        assert!(safe_run.consistent, "{safe_run:?}");
    }

    #[test]
    fn figure_1a_baseline_good_run_is_consistent() {
        let out = figure_1a(11);
        assert!(out.consistent, "{out:?}");
    }
}
