//! # oar-bench — experiment harness for the OAR reproduction
//!
//! Two kinds of artifacts:
//!
//! * [`figures`] — deterministic reproductions of the paper's execution
//!   scenarios (Figures 1–4), each returning the measured facts and a textual
//!   timeline;
//! * [`experiments`] — the quantitative claims (latency vs the baselines,
//!   fail-over time, Opt-undeliver frequency, throughput, the §5.3 epoch-cut
//!   ablation), each returning serialisable rows.
//!
//! The `harness` binary (`cargo run -p oar-bench --bin harness -- <experiment>`)
//! prints the rows as a table plus JSON; the Criterion benches under
//! `benches/` measure the wall-clock cost of the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figures;
pub mod json;

pub use experiments::{
    failover_experiment, gc_experiment, latency_experiment, throughput_experiment, undo_experiment,
    FailoverRow, GcRow, LatencyRow, ThroughputRow, UndoRow,
};
pub use figures::{all_figures, FigureOutcome};
