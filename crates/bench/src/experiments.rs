//! Quantitative experiments: the measurable claims of the OAR paper.
//!
//! The paper has no measurement section; its quantitative claims are made in
//! prose ("low latency", "only one phase for ordering in absence of failures",
//! "the probability of having to Opt-undeliver a message is very low", the
//! remark of §5.3 about garbage-collecting `O_delivered`). Each function here
//! turns one claim into an experiment with an explicit workload and sweep; the
//! `harness` binary prints the rows recorded in `EXPERIMENTS.md`.

use oar::cluster::{Cluster, ClusterConfig};
use oar::openloop::OpenLoopClient;
use oar::parallel::plan_waves;
use oar::server::OarServer;
use oar::shard::ShardRouter;
use oar::sharded::{ShardedCluster, ShardedConfig};
use oar::state_machine::{CounterMachine, StateMachine};
use oar::txn::TxnCluster;
use oar::OarConfig;
use oar_apps::cost::CostlyMachine;
use oar_apps::kv::{KvCommand, KvMachine, KvResponse};
use oar_baselines::{BaselineConfig, CtCluster, SequencerCluster};
use oar_rtnet::{RtNet, RunOptions};
use oar_simnet::{NetConfig, ProcessId, Samples, SimDuration, SimTime, Summary};

/// Completed operations per simulated second (0 when nothing completed).
fn sim_rate(count: usize, end: SimTime) -> f64 {
    let seconds = end.as_millis_f64() / 1_000.0;
    if seconds > 0.0 {
        count as f64 / seconds
    } else {
        0.0
    }
}

fn kv_workload(client: usize, requests: usize) -> Vec<KvCommand> {
    (0..requests)
        .map(|i| {
            if i % 4 == 3 {
                KvCommand::Get {
                    key: format!("k{}", i % 16),
                }
            } else {
                KvCommand::Put {
                    key: format!("k{}", i % 16),
                    value: format!("c{client}-v{i}"),
                }
            }
        })
        .collect()
}

fn counter_workload(requests: usize) -> Vec<oar::state_machine::CounterCommand> {
    (0..requests)
        .map(|i| oar::state_machine::CounterCommand::Add(i as i64 % 7 + 1))
        .collect()
}

/// One row of the latency experiment (T-LAT).
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Protocol name.
    pub protocol: String,
    /// Number of replicas.
    pub servers: usize,
    /// Requests measured.
    pub requests: usize,
    /// Latency summary (milliseconds).
    pub latency_ms: Summary,
}

/// T-LAT: client-observed latency of OAR vs the fixed-sequencer baseline vs
/// consensus-based atomic broadcast, failure-free, as the group size grows.
///
/// Paper claim (§1, §6): OAR "requires only one phase for ordering messages in
/// absence of failures", i.e. it should track the sequencer baseline closely
/// and beat the consensus-based broadcast clearly.
pub fn latency_experiment(
    group_sizes: &[usize],
    requests_per_client: usize,
    seed: u64,
) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    for &n in group_sizes {
        // OAR
        let config = ClusterConfig {
            num_servers: n,
            num_clients: 2,
            net: NetConfig::lan(),
            seed,
            ..ClusterConfig::default()
        };
        let mut oar: Cluster<KvMachine> = Cluster::build(&config, KvMachine::new, |c| {
            kv_workload(c, requests_per_client)
        });
        assert!(
            oar.run_to_completion(SimTime::from_secs(600)),
            "OAR run did not finish (n={n})"
        );
        oar.check_replica_consistency()
            .expect("OAR replica consistency");
        oar.check_external_consistency()
            .expect("OAR external consistency");
        rows.push(LatencyRow {
            protocol: "oar".into(),
            servers: n,
            requests: oar.latencies().len(),
            latency_ms: oar.latencies().summary(),
        });

        // Fixed sequencer
        let base = BaselineConfig {
            num_servers: n,
            num_clients: 2,
            net: NetConfig::lan(),
            seed,
            ..BaselineConfig::default()
        };
        let mut seq: SequencerCluster<KvMachine> =
            SequencerCluster::build(&base, KvMachine::new, |c| {
                kv_workload(c, requests_per_client)
            });
        assert!(
            seq.run_to_completion(SimTime::from_secs(600)),
            "sequencer run did not finish"
        );
        rows.push(LatencyRow {
            protocol: "fixed-sequencer".into(),
            servers: n,
            requests: seq.latencies().len(),
            latency_ms: seq.latencies().summary(),
        });

        // Consensus-based atomic broadcast
        let mut ct: CtCluster<KvMachine> = CtCluster::build(&base, KvMachine::new, |c| {
            kv_workload(c, requests_per_client)
        });
        assert!(
            ct.run_to_completion(SimTime::from_secs(600)),
            "CT run did not finish"
        );
        ct.check_total_order().expect("CT total order");
        rows.push(LatencyRow {
            protocol: "ct-abcast".into(),
            servers: n,
            requests: ct.latencies().len(),
            latency_ms: ct.latencies().summary(),
        });
    }
    rows
}

/// One row of the fail-over experiment (T-FAILOVER).
#[derive(Clone, Debug)]
pub struct FailoverRow {
    /// Number of replicas.
    pub servers: usize,
    /// Failure-detector timeout (ms).
    pub fd_timeout_ms: f64,
    /// Simulated time from the sequencer crash until every client request
    /// issued after the crash is answered (ms).
    pub recovery_ms: f64,
    /// Opt-undeliveries during the run.
    pub undeliveries: u64,
    /// Whether the run stayed consistent.
    pub consistent: bool,
}

/// T-FAILOVER: time to recover from a sequencer crash as a function of the
/// failure-detector timeout.
///
/// Paper claim (§2.2): algorithms that do not rely on a group-membership
/// oracle have a fail-over time governed by the failure-detector timeout, not
/// by a heavyweight view change.
pub fn failover_experiment(
    group_sizes: &[usize],
    fd_timeouts_ms: &[u64],
    seed: u64,
) -> Vec<FailoverRow> {
    let mut rows = Vec::new();
    for &n in group_sizes {
        for &timeout_ms in fd_timeouts_ms {
            let oar = OarConfig::with_fd_timeout(SimDuration::from_millis(timeout_ms));
            let config = ClusterConfig {
                num_servers: n,
                num_clients: 1,
                net: NetConfig::lan(),
                oar,
                seed,
                ..ClusterConfig::default()
            };
            let crash_at = SimTime::from_millis(5);
            let mut cluster: Cluster<CounterMachine> =
                Cluster::build(&config, CounterMachine::default, |_| counter_workload(40));
            cluster
                .world
                .schedule_crash(oar_simnet::ProcessId::new(0), crash_at);
            let done = cluster.run_to_completion(SimTime::from_secs(600));
            let consistent = done
                && cluster.check_replica_consistency().is_ok()
                && cluster.check_external_consistency().is_ok();
            // Recovery time: last completion time minus crash time, minus the
            // time the same workload needs without any crash.
            let last_completion = cluster
                .completed_requests()
                .iter()
                .map(|r| r.completed_at)
                .max()
                .unwrap_or(SimTime::ZERO);
            let mut baseline: Cluster<CounterMachine> = Cluster::build(
                &ClusterConfig {
                    oar: config.oar,
                    ..config.clone()
                },
                CounterMachine::default,
                |_| counter_workload(40),
            );
            baseline.run_to_completion(SimTime::from_secs(600));
            let baseline_last = baseline
                .completed_requests()
                .iter()
                .map(|r| r.completed_at)
                .max()
                .unwrap_or(SimTime::ZERO);
            let recovery_ms =
                (last_completion.as_millis_f64() - baseline_last.as_millis_f64()).max(0.0);
            rows.push(FailoverRow {
                servers: n,
                fd_timeout_ms: timeout_ms as f64,
                recovery_ms,
                undeliveries: cluster.total_undeliveries(),
                consistent,
            });
        }
    }
    rows
}

/// One row of the Opt-undeliver frequency experiment (T-UNDO).
#[derive(Clone, Debug)]
pub struct UndoRow {
    /// Number of replicas.
    pub servers: usize,
    /// Scenario label.
    pub scenario: String,
    /// Requests completed.
    pub requests: usize,
    /// Total Opt-deliveries.
    pub opt_deliveries: u64,
    /// Total Opt-undeliveries.
    pub opt_undeliveries: u64,
    /// Opt-undeliveries per delivered request (the paper's "very low
    /// probability").
    pub undo_rate: f64,
    /// Phase-2 entries.
    pub phase2_entries: u64,
    /// Whether the run stayed consistent.
    pub consistent: bool,
}

/// T-UNDO: how often optimistic deliveries are undone, under increasingly
/// adversarial failure scenarios.
///
/// Paper claim (§6): Opt-undeliver requires the conjunction of three unlikely
/// events (sequencer failure observed by only a minority, that minority's
/// values excluded from the consensus decision, and a different conservative
/// order), so its probability is very low even when crashes and suspicions are
/// common.
pub fn undo_experiment(seed: u64) -> Vec<UndoRow> {
    let mut rows = Vec::new();

    // Scenario A: failure-free.
    rows.push(run_undo_scenario("failure-free", 5, seed, |_cluster| {}));

    // Scenario B: sequencer crash observed by everyone (no partition).
    rows.push(run_undo_scenario("sequencer-crash", 5, seed, |cluster| {
        cluster
            .world
            .schedule_crash(oar_simnet::ProcessId::new(0), SimTime::from_millis(5));
    }));

    // Scenario C: sequencer crash + minority partition containing the only
    // server that saw the last ordering (the Figure-4 conditions).
    rows.push(run_undo_scenario(
        "crash+minority-partition",
        5,
        seed,
        |cluster| {
            let s = cluster.servers.clone();
            let c = cluster.clients.clone();
            let mut minority = vec![s[0], s[1]];
            minority.extend(c.iter().copied());
            let majority = vec![s[2], s[3], s[4]];
            cluster
                .world
                .schedule_partition(SimTime::from_millis(3), vec![minority, majority]);
            cluster.world.schedule_crash(s[0], SimTime::from_millis(8));
            cluster.world.schedule_heal(SimTime::from_millis(150));
        },
    ));

    rows
}

fn run_undo_scenario(
    label: &str,
    servers: usize,
    seed: u64,
    inject: impl FnOnce(&mut Cluster<CounterMachine>),
) -> UndoRow {
    let oar = OarConfig::with_fd_timeout(SimDuration::from_millis(25));
    let config = ClusterConfig {
        num_servers: servers,
        num_clients: 2,
        net: NetConfig::constant(SimDuration::from_micros(100)),
        oar,
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |_| counter_workload(30));
    inject(&mut cluster);
    let done = cluster.run_to_completion(SimTime::from_secs(600));
    let consistent = done
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok();
    let opt: u64 = cluster
        .servers
        .iter()
        .map(|&s| {
            cluster
                .world
                .process_ref::<oar::OarServer<CounterMachine>>(s)
                .stats()
                .opt_delivered
        })
        .sum();
    let undone = cluster.total_undeliveries();
    UndoRow {
        servers,
        scenario: label.into(),
        requests: cluster.completed_requests().len(),
        opt_deliveries: opt,
        opt_undeliveries: undone,
        undo_rate: if opt == 0 {
            0.0
        } else {
            undone as f64 / opt as f64
        },
        phase2_entries: cluster.total_phase2_entries(),
        consistent,
    }
}

/// One row of the throughput experiment (T-THROUGHPUT).
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Protocol name.
    pub protocol: String,
    /// Number of replicas.
    pub servers: usize,
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Requests completed.
    pub requests: usize,
    /// Completed requests per simulated second.
    pub requests_per_second: f64,
    /// Mean latency (ms).
    pub mean_latency_ms: f64,
    /// Median latency (ms). Percentiles make the latency *cost* of batching
    /// visible next to its throughput benefit: a partial batch waiting for a
    /// flush shows up in the tail, not the mean.
    pub p50_latency_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_latency_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_latency_ms: f64,
    /// `OrderMsg` broadcasts sent by sequencers during the run (OAR rows
    /// only; 0 for the baselines, which have no comparable counter). With
    /// `max_batch > 1` this drops well below `requests`.
    pub order_messages_sent: u64,
    /// `ReplyBatch` wires sent to clients (OAR rows only). With reply
    /// batching and pipelined clients this drops below `replies_sent`.
    pub reply_messages_sent: u64,
    /// Individual request replies carried by those wires (= `servers ×
    /// requests` in failure-free runs).
    pub replies_sent: u64,
    /// Consensus wire allocations (shared-relay count; 0 in failure-free
    /// runs, where phase 2 never starts).
    pub consensus_allocations: u64,
    /// Per-destination consensus deliveries — the allocations the pre-clone
    /// implementation would have paid.
    pub consensus_messages: u64,
    /// Peak size of any server's `payloads` map during the run.
    pub peak_payloads: u64,
    /// Real wall-clock nanoseconds spent inside `StateMachine` application
    /// across all servers (host time — a measurement channel, never part of
    /// the simulated protocol state).
    pub apply_ns: u64,
}

/// Sequencer batch size used by the `oar-batched` throughput variant.
pub const BATCHED_MAX_BATCH: usize = 8;

/// Pipeline depth of the `oar-pipelined` throughput variant: deep enough to
/// keep a full `OrderMsg` batch of each client's requests in flight, which is
/// what lets the servers coalesce their replies into `ReplyBatch` wires.
pub const PIPELINE_DEPTH: usize = BATCHED_MAX_BATCH;

/// Builds the KV deployment used by the throughput experiment. `pipeline` is
/// the per-client outstanding-request window (1 = the paper's closed loop).
/// When `oar_config` runs the adaptive batch controller, the clients run the
/// matching adaptive pipeline with `pipeline` as the window *cap*. Also
/// reused by the `throughput` criterion bench, so the measured workload
/// cannot drift from the experiment (the bench times only the run, not the
/// consistency checks).
pub fn build_throughput_cluster(
    oar_config: OarConfig,
    servers: usize,
    clients: usize,
    requests_per_client: usize,
    pipeline: usize,
    seed: u64,
) -> Cluster<KvMachine> {
    let config = ClusterConfig {
        num_servers: servers,
        num_clients: clients,
        net: NetConfig::lan(),
        oar: oar_config,
        seed,
        client_pipeline: pipeline,
        adaptive_pipeline: oar_config.adaptive.is_some(),
        ..ClusterConfig::default()
    };
    Cluster::build(&config, KvMachine::new, |c| {
        kv_workload(c, requests_per_client)
    })
}

/// Runs one OAR throughput deployment: builds the cluster, drives it to
/// completion, checks the consistency propositions and returns the measured
/// row.
pub fn run_oar_throughput(
    protocol: &str,
    oar_config: OarConfig,
    servers: usize,
    clients: usize,
    requests_per_client: usize,
    pipeline: usize,
    seed: u64,
) -> ThroughputRow {
    let mut cluster = build_throughput_cluster(
        oar_config,
        servers,
        clients,
        requests_per_client,
        pipeline,
        seed,
    );
    assert!(
        cluster.run_to_completion(SimTime::from_secs(600)),
        "{protocol} run did not finish"
    );
    cluster
        .check_replica_consistency()
        .expect("replica consistency");
    cluster
        .check_external_consistency()
        .expect("external consistency");
    let end = cluster
        .completed_requests()
        .iter()
        .map(|r| r.completed_at)
        .max()
        .unwrap_or(SimTime::ZERO);
    let mut row = throughput_row(protocol, servers, clients, end, &cluster.latencies());
    row.order_messages_sent = cluster.total_order_messages();
    row.reply_messages_sent = cluster.total_reply_messages();
    row.replies_sent = cluster.total_replies();
    row.consensus_allocations = cluster.total_consensus_wires();
    row.consensus_messages = cluster.total_consensus_messages();
    row.peak_payloads = cluster.peak_payloads();
    row.apply_ns = cluster.total_apply_ns();
    row
}

/// T-THROUGHPUT: completed requests per simulated second under increasing
/// closed-loop client counts, OAR (unbatched and batched sequencer) vs the
/// baselines.
pub fn throughput_experiment(
    servers: usize,
    client_counts: &[usize],
    requests_per_client: usize,
    seed: u64,
) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for &clients in client_counts {
        // OAR, unbatched (the paper's one-OrderMsg-per-request sequencer).
        rows.push(run_oar_throughput(
            "oar",
            OarConfig::default(),
            servers,
            clients,
            requests_per_client,
            1,
            seed,
        ));

        // OAR with sequencer batching: up to BATCHED_MAX_BATCH requests per
        // ordering broadcast, amortising the reliable-multicast cost.
        rows.push(run_oar_throughput(
            "oar-batched",
            OarConfig::with_batching(BATCHED_MAX_BATCH),
            servers,
            clients,
            requests_per_client,
            1,
            seed,
        ));

        // OAR with pipelined clients and window-sized sequencer batches: one
        // OrderMsg swallows the whole in-flight window (PIPELINE_DEPTH
        // requests per client), so each server coalesces its replies into
        // one ReplyBatch per client per window — reply_messages_sent drops
        // towards servers × clients × ceil(requests / PIPELINE_DEPTH).
        rows.push(run_oar_throughput(
            "oar-pipelined",
            OarConfig::with_batching(PIPELINE_DEPTH * clients),
            servers,
            clients,
            requests_per_client,
            PIPELINE_DEPTH,
            seed,
        ));

        let base = BaselineConfig {
            num_servers: servers,
            num_clients: clients,
            net: NetConfig::lan(),
            seed,
            ..BaselineConfig::default()
        };
        let mut seq: SequencerCluster<KvMachine> =
            SequencerCluster::build(&base, KvMachine::new, |c| {
                kv_workload(c, requests_per_client)
            });
        assert!(seq.run_to_completion(SimTime::from_secs(600)));
        let seq_end = seq
            .clients
            .iter()
            .flat_map(|&c| {
                seq.world
                    .process_ref::<oar_baselines::SequencerClient<KvMachine>>(c)
                    .completed()
                    .iter()
                    .map(|r| r.completed_at)
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        rows.push(throughput_row(
            "fixed-sequencer",
            servers,
            clients,
            seq_end,
            &seq.latencies(),
        ));

        let mut ct: CtCluster<KvMachine> = CtCluster::build(&base, KvMachine::new, |c| {
            kv_workload(c, requests_per_client)
        });
        assert!(ct.run_to_completion(SimTime::from_secs(600)));
        let ct_end = ct
            .clients
            .iter()
            .flat_map(|&c| {
                ct.world
                    .process_ref::<oar_baselines::CtClient<KvMachine>>(c)
                    .completed()
                    .iter()
                    .map(|r| r.completed_at)
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        rows.push(throughput_row(
            "ct-abcast",
            servers,
            clients,
            ct_end,
            &ct.latencies(),
        ));
    }
    rows
}

fn throughput_row(
    protocol: &str,
    servers: usize,
    clients: usize,
    end: SimTime,
    latencies: &Samples,
) -> ThroughputRow {
    let requests = latencies.len();
    ThroughputRow {
        protocol: protocol.into(),
        servers,
        clients,
        requests,
        requests_per_second: sim_rate(requests, end),
        mean_latency_ms: latencies.mean().unwrap_or(0.0),
        p50_latency_ms: latencies.quantile(0.5).unwrap_or(0.0),
        p95_latency_ms: latencies.quantile(0.95).unwrap_or(0.0),
        p99_latency_ms: latencies.quantile(0.99).unwrap_or(0.0),
        order_messages_sent: 0,
        reply_messages_sent: 0,
        replies_sent: 0,
        consensus_allocations: 0,
        consensus_messages: 0,
        peak_payloads: 0,
        apply_ns: 0,
    }
}

/// One row of the long-run soak experiment (T-SOAK).
#[derive(Clone, Debug)]
pub struct SoakRow {
    /// Number of replicas.
    pub servers: usize,
    /// Number of pipelined clients.
    pub clients: usize,
    /// Requests completed (the workload runs across many epochs).
    pub requests: usize,
    /// Epochs completed per server (average).
    pub epochs_per_server: f64,
    /// Peak size of any server's `payloads` map — the quantity the
    /// epoch-watermark GC must bound.
    pub peak_payloads: u64,
    /// Largest `payloads` size across alive servers at the end of the run.
    pub final_payloads: u64,
    /// Peak size of any server's reliable-multicast duplicate-suppression
    /// (`seen`) sets — aged out by the same watermark rule, so it must stay
    /// window-bounded too.
    pub peak_seen: u64,
    /// Largest `seen` size across alive servers at the end of the run.
    pub final_seen: u64,
    /// Payloads pruned by the watermark GC across all servers.
    pub payloads_pruned: u64,
    /// `ReplyBatch` wires sent across all servers.
    pub reply_messages_sent: u64,
    /// Individual replies carried by those wires.
    pub replies_sent: u64,
    /// `OrderMsg` broadcasts sent by sequencers.
    pub order_messages_sent: u64,
    /// Consensus wire allocations (shared-relay count).
    pub consensus_allocations: u64,
    /// Per-destination consensus deliveries the pre-clone scheme would have
    /// allocated.
    pub consensus_messages: u64,
    /// Whether the run completed and stayed consistent.
    pub consistent: bool,
}

/// Epoch-cut threshold of the soak experiment: epochs close every
/// `SOAK_EPOCH_CUT` optimistic deliveries, giving the watermark GC regular
/// settlement points.
pub const SOAK_EPOCH_CUT: u64 = 64;

/// T-SOAK: a long batched + pipelined run across many epochs, checking that
/// the traffic-amortisation and payload-GC bounds hold at scale.
///
/// The run drives `clients × requests_per_client` requests (the full-size
/// soak uses ≥ 5000) with sequencer batching, reply batching, pipelined
/// clients and periodic epoch cuts. [`check_soak_bounds`] turns the row into
/// a pass/fail verdict: peak `payloads` must be bounded by the
/// unsettled-epoch window — not by the total request count — and the
/// reply/order wire counts must stay under their amortisation ceilings.
pub fn soak_experiment(clients: usize, requests_per_client: usize, seed: u64) -> SoakRow {
    let servers = 3;
    let oar = OarConfig {
        epoch_cut_after: Some(SOAK_EPOCH_CUT),
        ..OarConfig::with_batching(PIPELINE_DEPTH * clients)
    };
    let mut cluster = build_throughput_cluster(
        oar,
        servers,
        clients,
        requests_per_client,
        PIPELINE_DEPTH,
        seed,
    );
    let done = cluster.run_to_completion(SimTime::from_secs(600));
    // Let the final watermark announcements propagate so end-of-run payload
    // levels reflect the GC, not message latency.
    let settle_until = cluster.world.now() + SimDuration::from_millis(50);
    cluster.world.run_until(settle_until);
    let consistent = done
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok();
    let epochs: u64 = cluster
        .servers
        .iter()
        .map(|&s| {
            cluster
                .world
                .process_ref::<oar::OarServer<KvMachine>>(s)
                .stats()
                .epochs_completed
        })
        .sum();
    SoakRow {
        servers,
        clients,
        requests: cluster.completed_requests().len(),
        epochs_per_server: epochs as f64 / servers as f64,
        peak_payloads: cluster.peak_payloads(),
        final_payloads: cluster.current_payloads(),
        peak_seen: cluster.peak_seen(),
        final_seen: cluster.current_seen(),
        payloads_pruned: cluster.total_payloads_pruned(),
        reply_messages_sent: cluster.total_reply_messages(),
        replies_sent: cluster.total_replies(),
        order_messages_sent: cluster.total_order_messages(),
        consensus_allocations: cluster.total_consensus_wires(),
        consensus_messages: cluster.total_consensus_messages(),
        consistent,
    }
}

/// Verifies the amortisation and memory bounds of a soak row; returns every
/// violation found (empty = pass). Used by the CI soak-smoke gate so traffic
/// regressions fail the build instead of silently eroding.
pub fn check_soak_bounds(row: &SoakRow, requests_per_client: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let total = (row.clients * requests_per_client) as u64;
    if !row.consistent {
        violations.push("run did not complete consistently".to_string());
    }
    if row.requests as u64 != total {
        violations.push(format!(
            "completed {} of {} requests (at-least-once violated)",
            row.requests, total
        ));
    }
    // Payload memory: bounded by the unsettled-epoch window (one epoch cut
    // plus the in-flight pipeline per client, with generous slack for epoch
    // boundaries), NOT by the total request count.
    let window = SOAK_EPOCH_CUT + (row.clients * PIPELINE_DEPTH) as u64;
    let payload_bound = 4 * window;
    if row.peak_payloads > payload_bound {
        violations.push(format!(
            "peak payloads {} exceeds the watermark window bound {payload_bound} \
             (total requests: {total})",
            row.peak_payloads
        ));
    }
    if row.final_payloads > payload_bound {
        violations.push(format!(
            "final payloads {} exceeds the watermark window bound {payload_bound}",
            row.final_payloads
        ));
    }
    // Seen-set memory (ROADMAP leftover): the casters' duplicate-suppression
    // sets are aged out by the same watermark, so they obey the same window
    // bound — plus a small allowance for the PhaseII ids of unsettled epochs.
    let seen_bound = payload_bound + 64;
    if row.peak_seen > seen_bound {
        violations.push(format!(
            "peak seen {} exceeds the watermark window bound {seen_bound} \
             (total requests: {total})",
            row.peak_seen
        ));
    }
    if row.final_seen > seen_bound {
        violations.push(format!(
            "final seen {} exceeds the watermark window bound {seen_bound}",
            row.final_seen
        ));
    }
    // Reply amortisation: at most ceil(requests / PIPELINE_DEPTH) ReplyBatch
    // wires per client per server (a client's replies coalesce per in-flight
    // window), with 2x slack for partially filled batches at epoch
    // boundaries. The unbatched protocol pays `servers × total` wires.
    let per_client_ceiling = requests_per_client.div_ceil(PIPELINE_DEPTH) as u64;
    let reply_ceiling = 2 * row.servers as u64 * row.clients as u64 * per_client_ceiling;
    if row.reply_messages_sent > reply_ceiling {
        violations.push(format!(
            "reply_messages_sent {} exceeds the amortisation ceiling {reply_ceiling}",
            row.reply_messages_sent
        ));
    }
    if row.replies_sent != row.servers as u64 * total {
        violations.push(format!(
            "replies_sent {} != servers × requests = {}",
            row.replies_sent,
            row.servers as u64 * total
        ));
    }
    // Ordering amortisation: one OrderMsg per window-sized batch, 2x slack
    // plus headroom for tick-flushed stragglers around epoch cuts.
    let order_window = (PIPELINE_DEPTH * row.clients) as u64;
    let order_ceiling = 2 * total.div_ceil(order_window).max(1) + 16;
    if row.order_messages_sent > order_ceiling {
        violations.push(format!(
            "order_messages_sent {} exceeds the amortisation ceiling {order_ceiling}",
            row.order_messages_sent
        ));
    }
    // Shared-relay consensus: every allocation reaches at least one
    // destination, and group-wide wires reach several — the pre-clone count
    // must be strictly larger in a run with consensus traffic.
    if row.consensus_allocations > 0 && row.consensus_messages <= row.consensus_allocations {
        violations.push(format!(
            "shared consensus wires ({}) should fan out to more destinations ({})",
            row.consensus_allocations, row.consensus_messages
        ));
    }
    violations
}

/// Epochs between snapshots in the recovery soak: small enough that the
/// retained `A_delivered` window is far below the workload size, large
/// enough that each snapshot covers several epochs of settled commands.
pub const RECOVERY_SNAPSHOT_EVERY: u64 = 4;

/// One row of the crash-recovery soak (T-RECOVER).
#[derive(Clone, Debug)]
pub struct RecoveryRow {
    /// Number of replicas.
    pub servers: usize,
    /// Number of pipelined clients.
    pub clients: usize,
    /// Requests completed.
    pub requests: usize,
    /// Whether the run completed and every consistency proposition held —
    /// including the rejoined replica, which the checks compare against the
    /// survivors through the compaction-aware digests and order hashes.
    pub consistent: bool,
    /// Whether the restarted replica finished its catch-up by quiesce.
    pub rejoined: bool,
    /// Snapshot position the restarted replica installed: > 0 means the
    /// rejoin was snapshot + delta, not a full replay.
    pub catch_up_snapshot_position: u64,
    /// Settled commands replayed on top of the snapshot image.
    pub catch_up_delta: u64,
    /// Total settled position of the rejoined replica at quiesce (must be
    /// past the transfer: it kept settling requests after resuming).
    pub rejoined_settled: u64,
    /// Peak retained `A_delivered` length across all servers — the quantity
    /// log compaction must bound by the snapshot window, not the workload.
    pub peak_a_delivered: u64,
    /// Peak undo-stack depth across all servers (cleared at each epoch
    /// close, so bounded by a single epoch's optimistic window).
    pub peak_undo_depth: u64,
    /// Snapshots taken across all servers.
    pub snapshots: u64,
    /// Settled commands pruned from retained logs across all servers.
    pub compacted: u64,
    /// `CatchUpRequest` wires sent (retries included).
    pub catch_up_requests: u64,
    /// `CatchUpReply` transfers served.
    pub catch_up_replies: u64,
    /// `PayloadFetch` repair wires sent.
    pub payload_fetches: u64,
}

/// T-RECOVER: the crash-recovery soak. A replica crashes under a batched,
/// pipelined, epoch-cut workload (the full-size run drives ≥ 5000 requests),
/// restarts with blank state mid-run, and rejoins through the snapshot +
/// delta catch-up protocol. [`check_recovery_bounds`] turns the row into a
/// pass/fail verdict: the rejoined replica must converge to the cluster
/// digest, peak `A_delivered` must be bounded by the compaction window — not
/// the workload size — and the catch-up wire count must stay bounded.
pub fn recovery_experiment(clients: usize, requests_per_client: usize, seed: u64) -> RecoveryRow {
    let servers = 3;
    let restarted = 2usize;
    let oar = OarConfig {
        epoch_cut_after: Some(SOAK_EPOCH_CUT),
        snapshot_every: Some(RECOVERY_SNAPSHOT_EVERY),
        ..OarConfig::with_batching(PIPELINE_DEPTH * clients)
    };
    let mut cluster = build_throughput_cluster(
        oar,
        servers,
        clients,
        requests_per_client,
        PIPELINE_DEPTH,
        seed,
    );
    // Crash a non-sequencer replica early, then revive it with fresh
    // in-memory state once a survivor has taken its first snapshot — so the
    // catch-up transfer is exercised as snapshot + delta (not a full replay)
    // while the workload is still running and the rejoined replica settles
    // new requests after resuming.
    cluster
        .world
        .schedule_crash(cluster.servers[restarted], SimTime::from_millis(2));
    let snapshot_deadline = SimTime::from_secs(300);
    while cluster.server(0).stats().snapshots_taken == 0 && cluster.world.now() < snapshot_deadline
    {
        let step = cluster.world.now() + SimDuration::from_millis(5);
        cluster.world.run_until(step);
    }
    let restart_at = cluster.world.now() + SimDuration::from_millis(1);
    cluster.schedule_server_restart(restart_at, restarted, KvMachine::new);
    let done = cluster.run_to_completion(SimTime::from_secs(600));
    // Let catch-up retries, watermarks and heartbeats settle.
    let settle_until = cluster.world.now() + SimDuration::from_millis(120);
    cluster.world.run_until(settle_until);
    let consistent = done
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok();
    let rejoined_server = cluster.server(restarted);
    let rejoined = !rejoined_server.is_recovering();
    let stats = rejoined_server.stats();
    RecoveryRow {
        servers,
        clients,
        requests: cluster.completed_requests().len(),
        consistent,
        rejoined,
        catch_up_snapshot_position: stats.catch_up_snapshot_position,
        catch_up_delta: stats.catch_up_delta,
        rejoined_settled: rejoined_server.total_settled(),
        peak_a_delivered: cluster.peak_a_delivered_len(),
        peak_undo_depth: cluster.peak_undo_depth(),
        snapshots: cluster.total_snapshots(),
        compacted: cluster.total_compacted(),
        catch_up_requests: cluster.total_catch_up_requests(),
        catch_up_replies: cluster.total_catch_up_replies(),
        payload_fetches: cluster.total_payload_fetches(),
    }
}

/// Verifies the recovery gates of a T-RECOVER row; returns every violation
/// found (empty = pass). Used by the CI `recovery-smoke` gate.
pub fn check_recovery_bounds(row: &RecoveryRow, requests_per_client: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let total = (row.clients * requests_per_client) as u64;
    if !row.consistent {
        violations.push("run did not complete consistently".to_string());
    }
    if row.requests as u64 != total {
        violations.push(format!(
            "completed {} of {} requests (at-least-once violated)",
            row.requests, total
        ));
    }
    // Gate 1: the restarted replica converged — it finished catch-up via
    // snapshot + delta (not a full replay) and kept settling afterwards.
    // Digest equality with the survivors is part of `consistent` above.
    if !row.rejoined {
        violations.push("restarted replica still mid-recovery at quiesce".to_string());
    }
    if row.catch_up_snapshot_position == 0 {
        violations.push(format!(
            "catch-up replayed from position 0 — full replay, not snapshot + delta \
             (delta {})",
            row.catch_up_delta
        ));
    }
    let transferred = row.catch_up_snapshot_position + row.catch_up_delta;
    if row.rejoined_settled <= transferred {
        violations.push(format!(
            "rejoined replica settled nothing after the transfer \
             (transfer {transferred}, settled {})",
            row.rejoined_settled
        ));
    }
    // Gate 2: log compaction bounds retained state by the snapshot window —
    // `RECOVERY_SNAPSHOT_EVERY` epochs of at most (cut + in-flight pipeline)
    // commands each, with 2x slack — NOT by the total request count.
    let epoch_window = SOAK_EPOCH_CUT + (row.clients * PIPELINE_DEPTH) as u64;
    let a_delivered_bound = 2 * RECOVERY_SNAPSHOT_EVERY * epoch_window;
    if row.peak_a_delivered > a_delivered_bound {
        violations.push(format!(
            "peak A_delivered {} exceeds the compaction window bound {a_delivered_bound} \
             (total requests: {total})",
            row.peak_a_delivered
        ));
    }
    if row.snapshots == 0 {
        violations.push("no snapshots taken — compaction never ran".to_string());
    }
    // The undo stack clears at every epoch close: bounded by one epoch's
    // optimistic window regardless of workload size.
    let undo_bound = 2 * epoch_window;
    if row.peak_undo_depth > undo_bound {
        violations.push(format!(
            "peak undo depth {} exceeds the epoch window bound {undo_bound}",
            row.peak_undo_depth
        ));
    }
    // Gate 3: bounded catch-up wire count. One restart should take a handful
    // of request/reply exchanges (donor rotation retries included) and a
    // bounded number of payload repairs — never O(workload) traffic.
    if row.catch_up_requests > 8 {
        violations.push(format!(
            "{} CatchUpRequest wires for one restart (retry storm?)",
            row.catch_up_requests
        ));
    }
    if row.catch_up_replies > 8 {
        violations.push(format!(
            "{} CatchUpReply transfers for one restart",
            row.catch_up_replies
        ));
    }
    if row.payload_fetches > 64 {
        violations.push(format!(
            "{} PayloadFetch wires (repair traffic should be bounded)",
            row.payload_fetches
        ));
    }
    violations
}

/// One row of the sharded scaling experiment (T-SHARD).
#[derive(Clone, Debug)]
pub struct ShardedRow {
    /// Number of OAR groups the key space is partitioned over.
    pub groups: usize,
    /// Replicas per group.
    pub servers_per_group: usize,
    /// Closed-loop clients *per group* (total clients = groups × this).
    pub clients_per_group: usize,
    /// Requests completed across all groups.
    pub requests: usize,
    /// Aggregate completed requests per simulated second.
    pub requests_per_second: f64,
    /// Mean client-observed latency (ms).
    pub mean_latency_ms: f64,
    /// Requests that reached a group other than the one they were stamped
    /// for. Must be 0: the router is a pure function replicated at every
    /// client.
    pub misroutes: u64,
    /// Peak duplicate-suppression (`seen`) set size at any server.
    pub peak_seen: u64,
    /// `OrderMsg` broadcasts per group (each group has its own sequencer).
    pub per_group_order_messages: Vec<u64>,
    /// `ReplyBatch` wires per group.
    pub per_group_reply_messages: Vec<u64>,
    /// Wire messages handed to the network by each group's servers
    /// (relays, ordering, replies, consensus, heartbeats).
    pub per_group_wire_sent: Vec<u64>,
    /// Whether the run completed with every group's propositions intact.
    pub consistent: bool,
}

/// Replicas per group used by the sharded experiment.
pub const SHARDED_SERVERS_PER_GROUP: usize = 3;

/// The fixed key pool of the sharded workload. Independent of the group
/// count, so the *same* per-client workload is measured at every scale and
/// the hash router simply spreads it over more groups.
pub const SHARDED_KEY_SPACE: usize = 64;

fn sharded_workload(client: usize, requests: usize) -> Vec<KvCommand> {
    (0..requests)
        .map(|i| {
            let key = format!("k{:02}", (client * 13 + i * 7) % SHARDED_KEY_SPACE);
            if i % 4 == 3 {
                KvCommand::Get { key }
            } else {
                KvCommand::Put {
                    key,
                    value: format!("c{client}-v{i}"),
                }
            }
        })
        .collect()
}

/// Builds the sharded KV deployment measured by T-SHARD (also reused by the
/// `sharded` criterion bench): `groups` hash-partitioned OAR groups of
/// [`SHARDED_SERVERS_PER_GROUP`] replicas, `clients_per_group × groups`
/// pipelined clients, batched sequencers.
pub fn build_sharded_cluster(
    groups: usize,
    clients_per_group: usize,
    requests_per_client: usize,
    seed: u64,
) -> ShardedCluster<KvMachine> {
    let config = ShardedConfig {
        num_groups: groups,
        servers_per_group: SHARDED_SERVERS_PER_GROUP,
        num_clients: groups * clients_per_group,
        router: ShardRouter::hash(groups),
        net: NetConfig::lan(),
        oar: OarConfig::with_batching(PIPELINE_DEPTH),
        seed,
        think_time: SimDuration::ZERO,
        client_pipeline: PIPELINE_DEPTH,
        adaptive_pipeline: false,
    };
    ShardedCluster::build(&config, KvMachine::new, |c| {
        sharded_workload(c, requests_per_client)
    })
}

/// T-SHARD: aggregate throughput as the key space is partitioned over more
/// groups, at **fixed per-group client load** — the deployment-level answer
/// to the single-sequencer ceiling. Each group runs the unmodified OAR
/// protocol; the propositions are checked per group, and cross-group
/// ordering is explicitly out of scope.
pub fn sharded_experiment(
    group_counts: &[usize],
    clients_per_group: usize,
    requests_per_client: usize,
    seed: u64,
) -> Vec<ShardedRow> {
    let mut rows = Vec::new();
    for &groups in group_counts {
        let mut cluster =
            build_sharded_cluster(groups, clients_per_group, requests_per_client, seed);
        let done = cluster.run_to_completion(SimTime::from_secs(600));
        let consistent = done
            && cluster.check_per_group_consistency().is_ok()
            && cluster.check_external_consistency().is_ok();
        let end = cluster.last_completion();
        let requests = cluster.completed_requests().len();
        rows.push(ShardedRow {
            groups,
            servers_per_group: SHARDED_SERVERS_PER_GROUP,
            clients_per_group,
            requests,
            requests_per_second: sim_rate(requests, end),
            mean_latency_ms: cluster.latencies().mean().unwrap_or(0.0),
            misroutes: cluster.total_misroutes(),
            peak_seen: cluster.peak_seen(),
            per_group_order_messages: (0..groups)
                .map(|g| cluster.sum_group_stats(g, |st| st.order_messages_sent))
                .collect(),
            per_group_reply_messages: (0..groups)
                .map(|g| cluster.sum_group_stats(g, |st| st.reply_messages_sent))
                .collect(),
            per_group_wire_sent: (0..groups)
                .map(|g| cluster.group_net_stats(g).sent)
                .collect(),
            consistent,
        });
    }
    rows
}

/// Verifies the scaling and isolation claims of a T-SHARD sweep; returns
/// every violation found (empty = pass). The CI `sharded-smoke` gate:
///
/// * every run completes with the per-group propositions intact;
/// * zero misroutes anywhere;
/// * aggregate throughput at 4 groups ≥ 2× the 1-group run (same per-group
///   load), i.e. adding groups adds capacity instead of interference.
pub fn check_sharded_bounds(
    rows: &[ShardedRow],
    clients_per_group: usize,
    requests_per_client: usize,
) -> Vec<String> {
    let mut violations = Vec::new();
    for row in rows {
        let expected = row.groups * clients_per_group * requests_per_client;
        if !row.consistent {
            violations.push(format!(
                "{} groups: run did not complete consistently",
                row.groups
            ));
        }
        if row.requests != expected {
            violations.push(format!(
                "{} groups: completed {} of {expected} requests",
                row.groups, row.requests
            ));
        }
        if row.misroutes != 0 {
            violations.push(format!(
                "{} groups: {} misrouted requests (must be 0)",
                row.groups, row.misroutes
            ));
        }
    }
    let throughput_of = |groups: usize| {
        rows.iter()
            .find(|r| r.groups == groups)
            .map(|r| r.requests_per_second)
    };
    match (throughput_of(1), throughput_of(4)) {
        (Some(tp1), Some(tp4)) => {
            if tp4 < 2.0 * tp1 {
                violations.push(format!(
                    "aggregate throughput at 4 groups ({tp4:.1} req/s) is below 2x \
                     the 1-group run ({tp1:.1} req/s)"
                ));
            }
        }
        // The gate must fail loudly, not pass vacuously, if the sweep no
        // longer produces the rows it compares.
        _ => violations.push(
            "sweep lacks the 1-group and/or 4-group rows; the >=2x scaling \
             gate was not evaluated"
                .to_string(),
        ),
    }
    violations
}

/// One row of the multi-key transaction experiment (T-TXN).
#[derive(Clone, Debug)]
pub struct TxnRow {
    /// Number of OAR groups the key space is partitioned over.
    pub groups: usize,
    /// Transactional clients.
    pub clients: usize,
    /// Transactions committed in the multi-group run.
    pub txns: usize,
    /// Committed transactions that spanned more than one group.
    pub multi_group_txns: usize,
    /// Committed transactions per simulated second (multi-group run).
    pub commits_per_second: f64,
    /// Mean client-observed commit latency (ms, multi-group run).
    pub mean_commit_latency_ms: f64,
    /// p99 commit latency (ms, multi-group run).
    pub p99_commit_latency_ms: f64,
    /// `TxnPrepare` requests buffered across all servers (multi-group run).
    pub txn_prepares: u64,
    /// Misrouted requests across all three runs (multi-group, fast-path and
    /// plain baseline). Must be 0.
    pub misroutes: u64,
    /// Total wire messages of the *single-group* transactional run — the
    /// fast path under test.
    pub fastpath_wires_txn: u64,
    /// Total wire messages of the equivalent plain [`ShardedCluster`] run
    /// submitting the same commands. The fast-path gate requires equality.
    pub fastpath_wires_plain: u64,
    /// `TxnPrepare` envelopes observed in the single-group run. Must be 0:
    /// the fast path is indistinguishable from a plain request.
    pub fastpath_txn_prepares: u64,
    /// Mean fast-path commit latency (ms) — should track the plain run.
    pub fastpath_latency_ms: f64,
    /// Mean plain-run request latency (ms).
    pub plain_latency_ms: f64,
    /// Whether both runs completed with every check green (per-group
    /// propositions, cross-group atomicity, per-part external consistency).
    pub consistent: bool,
}

/// The fixed key pool of the transactional workloads (same pool as the
/// sharded experiment, so the hash router spreads it over every group
/// count).
pub const TXN_KEY_SPACE: usize = SHARDED_KEY_SPACE;

/// Single-group transactions: two ops on the *same* key (a write and a
/// read), so the router collapses every transaction onto one owning group
/// and the fast path fires.
fn txn_fastpath_workload(client: usize, txns: usize) -> Vec<Vec<KvCommand>> {
    (0..txns)
        .map(|i| {
            let key = format!("k{:02}", (client * 13 + i * 7) % TXN_KEY_SPACE);
            vec![
                KvCommand::Put {
                    key: key.clone(),
                    value: format!("c{client}-t{i}"),
                },
                KvCommand::Get { key },
            ]
        })
        .collect()
}

/// The same commands as [`txn_fastpath_workload`], submitted as plain
/// atomic `Multi` commands through the non-transactional sharded client —
/// the baseline the fast-path wire gate compares against.
fn txn_fastpath_plain_workload(client: usize, txns: usize) -> Vec<KvCommand> {
    txn_fastpath_workload(client, txns)
        .into_iter()
        .map(KvCommand::Multi)
        .collect()
}

/// Multi-key transactions: a write on each of two distinct keys, which the
/// hash router spreads over distinct groups for most draws once the
/// deployment has more than one group.
fn txn_multi_workload(client: usize, txns: usize) -> Vec<Vec<KvCommand>> {
    (0..txns)
        .map(|i| {
            let a = format!("k{:02}", (client * 13 + i * 7) % TXN_KEY_SPACE);
            let b = format!("k{:02}", (client * 13 + i * 7 + 17) % TXN_KEY_SPACE);
            vec![
                KvCommand::Put {
                    key: a,
                    value: format!("c{client}-t{i}a"),
                },
                KvCommand::Put {
                    key: b,
                    value: format!("c{client}-t{i}b"),
                },
            ]
        })
        .collect()
}

/// The single deployment configuration of the T-TXN runs. Shared by the
/// transactional cluster *and* the plain baseline it is compared against:
/// the fast-path wire-identity gate is only meaningful when the two runs
/// are configured byte-identically, so there is exactly one place to tune.
fn txn_shard_config(groups: usize, clients: usize, seed: u64) -> ShardedConfig {
    ShardedConfig {
        num_groups: groups,
        servers_per_group: SHARDED_SERVERS_PER_GROUP,
        num_clients: clients,
        router: ShardRouter::hash(groups),
        net: NetConfig::lan(),
        oar: OarConfig::default(),
        seed,
        think_time: SimDuration::ZERO,
        client_pipeline: 1,
        adaptive_pipeline: false,
    }
}

/// Builds the transactional KV deployment measured by T-TXN (also reused by
/// the `txn` criterion bench): `groups` hash-partitioned OAR groups of
/// [`SHARDED_SERVERS_PER_GROUP`] replicas and `clients` closed-loop
/// transactional clients. `multi_group` selects the spanning workload; the
/// fast-path workload keeps every transaction in one group.
pub fn build_txn_cluster(
    groups: usize,
    clients: usize,
    txns_per_client: usize,
    multi_group: bool,
    seed: u64,
) -> TxnCluster<KvMachine> {
    let config = txn_shard_config(groups, clients, seed);
    TxnCluster::build(&config, KvMachine::new, |c| {
        if multi_group {
            txn_multi_workload(c, txns_per_client)
        } else {
            txn_fastpath_workload(c, txns_per_client)
        }
    })
}

/// The plain sharded deployment the fast-path gate compares against: the
/// identical configuration, the identical commands, submitted without the
/// transaction layer.
pub fn build_txn_plain_cluster(
    groups: usize,
    clients: usize,
    txns_per_client: usize,
    seed: u64,
) -> ShardedCluster<KvMachine> {
    let config = txn_shard_config(groups, clients, seed);
    ShardedCluster::build(&config, KvMachine::new, |c| {
        txn_fastpath_plain_workload(c, txns_per_client)
    })
}

/// T-TXN: the cost of cross-group multi-key transactions as the key space
/// is partitioned over more groups.
///
/// Two claims per group count:
///
/// * **fast-path overhead ≈ 0** — a single-group transactional workload
///   produces wire traffic *identical* (counter-equal) to the plain sharded
///   client submitting the same atomic commands, with zero `TxnPrepare`
///   envelopes;
/// * **multi-group commit latency** — a transaction spanning `g` groups
///   commits once the Fig. 5 quorum holds in every participant, so its
///   latency tracks the *slowest* group rather than the sum; the sweep
///   records how that cost grows with the group count.
pub fn txn_experiment(
    group_counts: &[usize],
    clients: usize,
    txns_per_client: usize,
    seed: u64,
) -> Vec<TxnRow> {
    let mut rows = Vec::new();
    for &groups in group_counts {
        // Fast-path pair: transactional vs plain, identical commands.
        let mut fast = build_txn_cluster(groups, clients, txns_per_client, false, seed);
        let fast_done = fast.run_to_completion(SimTime::from_secs(600));
        let fast_ok = fast_done && fast.check_all().is_ok();
        let mut plain = build_txn_plain_cluster(groups, clients, txns_per_client, seed);
        let plain_done = plain.run_to_completion(SimTime::from_secs(600));
        let plain_ok = plain_done
            && plain.check_per_group_consistency().is_ok()
            && plain.check_external_consistency().is_ok();

        // Multi-group commit run.
        let mut multi = build_txn_cluster(groups, clients, txns_per_client, true, seed);
        let multi_done = multi.run_to_completion(SimTime::from_secs(600));
        let multi_ok = multi_done && multi.check_all().is_ok();

        let end = multi.last_completion();
        let txns = multi.completed_txns().len();
        rows.push(TxnRow {
            groups,
            clients,
            txns,
            multi_group_txns: multi.multi_group_commits(),
            commits_per_second: sim_rate(txns, end),
            mean_commit_latency_ms: multi.latencies().mean().unwrap_or(0.0),
            p99_commit_latency_ms: multi.latencies().quantile(0.99).unwrap_or(0.0),
            txn_prepares: multi.total_txn_prepares(),
            misroutes: multi.total_misroutes() + fast.total_misroutes() + plain.total_misroutes(),
            fastpath_wires_txn: fast.total_wires(),
            fastpath_wires_plain: plain.world.stats().sent,
            fastpath_txn_prepares: fast.total_txn_prepares(),
            fastpath_latency_ms: fast.latencies().mean().unwrap_or(0.0),
            plain_latency_ms: plain.latencies().mean().unwrap_or(0.0),
            consistent: fast_ok && plain_ok && multi_ok,
        });
    }
    rows
}

/// Verifies the transactional gates of a T-TXN sweep; returns every
/// violation found (empty = pass). The CI `txn-smoke` gate:
///
/// * both runs of every row complete with all checks green (per-group
///   propositions, cross-group **atomicity**, per-part external
///   consistency) and zero misroutes;
/// * the single-group fast path adds **zero wires**: exact wire-count
///   equality with the plain sharded run, and zero `TxnPrepare` envelopes;
/// * with more than one group, the sweep actually exercised multi-group
///   commits (the gate must not pass vacuously).
pub fn check_txn_bounds(rows: &[TxnRow], clients: usize, txns_per_client: usize) -> Vec<String> {
    let mut violations = Vec::new();
    for row in rows {
        let expected = clients * txns_per_client;
        if !row.consistent {
            violations.push(format!(
                "{} groups: a run did not complete with all checks green",
                row.groups
            ));
        }
        if row.txns != expected {
            violations.push(format!(
                "{} groups: committed {} of {expected} transactions",
                row.groups, row.txns
            ));
        }
        if row.misroutes != 0 {
            violations.push(format!(
                "{} groups: {} misrouted requests (must be 0)",
                row.groups, row.misroutes
            ));
        }
        if row.fastpath_wires_txn != row.fastpath_wires_plain {
            violations.push(format!(
                "{} groups: single-group fast path sent {} wires vs {} for the \
                 plain sharded client (must be identical)",
                row.groups, row.fastpath_wires_txn, row.fastpath_wires_plain
            ));
        }
        if row.fastpath_txn_prepares != 0 {
            violations.push(format!(
                "{} groups: {} TxnPrepare envelopes on the fast path (must be 0)",
                row.groups, row.fastpath_txn_prepares
            ));
        }
        if row.groups > 1 {
            if row.multi_group_txns == 0 {
                violations.push(format!(
                    "{} groups: no multi-group transaction committed; the \
                     atomicity gate was not exercised",
                    row.groups
                ));
            }
            if row.txn_prepares == 0 {
                violations.push(format!(
                    "{} groups: no TxnPrepare observed at any server",
                    row.groups
                ));
            }
        }
    }
    if rows.is_empty() {
        violations.push("sweep produced no rows".to_string());
    }
    violations
}

/// One row of the §5.3 epoch-cut ablation (T-GC).
#[derive(Clone, Debug)]
pub struct GcRow {
    /// The epoch-cut threshold (`None` = never cut, the paper's base
    /// algorithm).
    pub cut_after: Option<u64>,
    /// Requests completed.
    pub requests: usize,
    /// Epochs completed across the run (per server average).
    pub epochs_per_server: f64,
    /// Mean latency (ms).
    pub mean_latency_ms: f64,
    /// p99 latency (ms).
    pub p99_latency_ms: f64,
    /// Whether the run stayed consistent.
    pub consistent: bool,
}

/// T-GC: the §5.3 remark — periodically cutting the epoch garbage-collects
/// `O_delivered` (bounding the state `Cnsv-order` must handle) at the cost of
/// running the conservative phase regularly.
pub fn gc_experiment(cut_values: &[Option<u64>], requests: usize, seed: u64) -> Vec<GcRow> {
    let mut rows = Vec::new();
    for &cut_after in cut_values {
        let oar = OarConfig {
            epoch_cut_after: cut_after,
            ..OarConfig::default()
        };
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::lan(),
            oar,
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<KvMachine> =
            Cluster::build(&config, KvMachine::new, |c| kv_workload(c, requests));
        let done = cluster.run_to_completion(SimTime::from_secs(600));
        let consistent = done
            && cluster.check_replica_consistency().is_ok()
            && cluster.check_external_consistency().is_ok();
        let epochs: u64 = cluster
            .servers
            .iter()
            .map(|&s| {
                cluster
                    .world
                    .process_ref::<oar::OarServer<KvMachine>>(s)
                    .stats()
                    .epochs_completed
            })
            .sum();
        let lat = cluster.latencies();
        rows.push(GcRow {
            cut_after,
            requests: cluster.completed_requests().len(),
            epochs_per_server: epochs as f64 / cluster.servers.len() as f64,
            mean_latency_ms: lat.mean().unwrap_or(0.0),
            p99_latency_ms: lat.quantile(0.99).unwrap_or(0.0),
            consistent,
        });
    }
    rows
}

/// One row of the adaptive batching experiment (T-ADAPTIVE).
#[derive(Clone, Debug)]
pub struct AdaptiveRow {
    /// Variant label: `unbatched`, `batched8`, `replybatch` (the static
    /// settings) or `adaptive` (controller-driven).
    pub protocol: String,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Requests completed.
    pub requests: usize,
    /// Host wall-clock of one simulation run, milliseconds (minimum over the
    /// experiment's repeats — the robust point of a noisy measurement).
    pub wall_ms: f64,
    /// Completed requests per simulated second.
    pub requests_per_second: f64,
    /// Mean simulated latency (ms).
    pub mean_latency_ms: f64,
    /// Median simulated latency (ms).
    pub p50_latency_ms: f64,
    /// 95th-percentile simulated latency (ms).
    pub p95_latency_ms: f64,
    /// 99th-percentile simulated latency (ms) — where the flush deadline of
    /// a partial batch shows up.
    pub p99_latency_ms: f64,
    /// `OrderMsg` broadcasts sent by sequencers.
    pub order_messages_sent: u64,
    /// `ReplyBatch` wires sent to clients.
    pub reply_messages_sent: u64,
    /// Largest `OrderMsg` batch any sequencer emitted.
    pub effective_batch_peak: u64,
    /// The batch threshold in force at the end of the run (adaptive rows:
    /// the controller's converged target; static rows: `max_batch`).
    pub batch_target: u64,
    /// Adaptive-target raises across all servers (convergence counter).
    pub target_raises: u64,
    /// Adaptive-target drops across all servers (convergence counter).
    pub target_drops: u64,
    /// Partial batches flushed by the deadline timer.
    pub deadline_flushes: u64,
    /// Deepest pipeline window any client adopted (0 for static pipelines).
    pub client_window_peak: u64,
    /// Whether the run completed with the propositions intact.
    pub consistent: bool,
}

/// Cap of the adaptive client pipeline window in the T-ADAPTIVE runs — the
/// static `replybatch` comparison point uses the same depth.
pub const ADAPTIVE_CLIENT_CAP: usize = PIPELINE_DEPTH;

/// The static variants the adaptive controller is measured against, plus the
/// adaptive deployment itself: (label, server config, client pipeline). The
/// `replybatch` variant is the hand-tuned best static setting of PR 2
/// (window-sized batches + pipelined clients).
fn adaptive_variants(clients: usize) -> Vec<(&'static str, OarConfig, usize)> {
    vec![
        ("unbatched", OarConfig::default(), 1),
        ("batched8", OarConfig::with_batching(BATCHED_MAX_BATCH), 1),
        (
            "replybatch",
            OarConfig::with_batching(PIPELINE_DEPTH * clients),
            PIPELINE_DEPTH,
        ),
        ("adaptive", OarConfig::adaptive(), ADAPTIVE_CLIENT_CAP),
    ]
}

/// T-ADAPTIVE: the load-driven batch controller against every static
/// setting, at light (1 client) and heavy (8 clients) load.
///
/// Each variant runs `repeats` times on the same seed; the wall-clock of the
/// fastest run is recorded (host time tracks the simulator's event count,
/// i.e. the wire traffic the batching amortises), while counters, latencies
/// and consistency come from the (identical) last run. The gates live in
/// [`check_adaptive_bounds`].
pub fn adaptive_experiment(
    client_counts: &[usize],
    requests_per_client: usize,
    repeats: usize,
    seed: u64,
) -> Vec<AdaptiveRow> {
    let mut rows = Vec::new();
    for &clients in client_counts {
        for (protocol, oar, pipeline) in adaptive_variants(clients) {
            let mut wall_ms = f64::INFINITY;
            let mut last: Option<Cluster<KvMachine>> = None;
            let mut done = false;
            for _ in 0..repeats.max(1) {
                let mut cluster =
                    build_throughput_cluster(oar, 3, clients, requests_per_client, pipeline, seed);
                let t0 = std::time::Instant::now();
                done = cluster.run_to_completion(SimTime::from_secs(600));
                wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1_000.0);
                last = Some(cluster);
            }
            let cluster = last.expect("at least one repeat");
            let consistent = done
                && cluster.check_replica_consistency().is_ok()
                && cluster.check_external_consistency().is_ok();
            let end = cluster
                .completed_requests()
                .iter()
                .map(|r| r.completed_at)
                .max()
                .unwrap_or(SimTime::ZERO);
            let lat = cluster.latencies();
            rows.push(AdaptiveRow {
                protocol: protocol.into(),
                clients,
                requests: lat.len(),
                wall_ms,
                requests_per_second: sim_rate(lat.len(), end),
                mean_latency_ms: lat.mean().unwrap_or(0.0),
                p50_latency_ms: lat.quantile(0.5).unwrap_or(0.0),
                p95_latency_ms: lat.quantile(0.95).unwrap_or(0.0),
                p99_latency_ms: lat.quantile(0.99).unwrap_or(0.0),
                order_messages_sent: cluster.total_order_messages(),
                reply_messages_sent: cluster.total_reply_messages(),
                effective_batch_peak: cluster.peak_effective_batch(),
                batch_target: cluster.max_batch_target(),
                target_raises: cluster.total_target_raises(),
                target_drops: cluster.total_target_drops(),
                deadline_flushes: cluster.total_deadline_flushes(),
                client_window_peak: cluster.peak_client_window(),
                consistent,
            });
        }
    }
    rows
}

/// Verifies the T-ADAPTIVE gates; returns every violation found (empty =
/// pass). The CI `adaptive-smoke` gate:
///
/// * every run completes consistently with the full request count;
/// * **light load adds no latency**: at the lowest client count the adaptive
///   run's mean and p99 simulated latency are within 5% of the best
///   *closed-loop* static setting (`unbatched` / `batched8` — the static
///   pipelined variant offers different load and is compared at the high
///   end), its throughput within 5% of unbatched, and the controller never
///   ramps (target 1, no raises);
/// * **heavy load amortises**: at the highest client count the adaptive run
///   beats unbatched by ≥15% in simulated throughput, halves (at least) the
///   ordering wires, stays within 10% of the best static setting's
///   throughput, and the convergence counters show the ramp actually
///   happened (raises > 0, effective batch ≥ client count, client windows at
///   the cap).
pub fn check_adaptive_bounds(rows: &[AdaptiveRow], requests_per_client: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let mut client_counts: Vec<usize> = rows.iter().map(|r| r.clients).collect();
    client_counts.sort_unstable();
    client_counts.dedup();
    let (Some(&low), Some(&high)) = (client_counts.first(), client_counts.last()) else {
        return vec!["sweep produced no rows".to_string()];
    };
    let find = |clients: usize, protocol: &str| {
        rows.iter()
            .find(|r| r.clients == clients && r.protocol == protocol)
    };
    for row in rows {
        let expected = row.clients * requests_per_client;
        if !row.consistent {
            violations.push(format!(
                "{} @ {} clients: run did not complete consistently",
                row.protocol, row.clients
            ));
        }
        if row.requests != expected {
            violations.push(format!(
                "{} @ {} clients: completed {} of {expected} requests",
                row.protocol, row.clients, row.requests
            ));
        }
    }
    let required: Vec<_> = ["unbatched", "batched8", "adaptive"]
        .iter()
        .flat_map(|p| [(low, *p), (high, *p)])
        .chain([(high, "replybatch")])
        .filter(|(c, p)| find(*c, p).is_none())
        .collect();
    if !required.is_empty() {
        violations.push(format!(
            "sweep lacks required rows {required:?}; the gates were not evaluated"
        ));
        return violations;
    }
    let adaptive_low = find(low, "adaptive").expect("checked above");
    let unbatched_low = find(low, "unbatched").expect("checked above");
    let batched_low = find(low, "batched8").expect("checked above");

    // Light load: no added latency against the best closed-loop static.
    let best_mean = unbatched_low
        .mean_latency_ms
        .min(batched_low.mean_latency_ms);
    if adaptive_low.mean_latency_ms > 1.05 * best_mean {
        violations.push(format!(
            "light load: adaptive mean latency {:.3}ms exceeds 1.05x the best \
             static ({best_mean:.3}ms)",
            adaptive_low.mean_latency_ms
        ));
    }
    let best_p99 = unbatched_low.p99_latency_ms.min(batched_low.p99_latency_ms);
    if adaptive_low.p99_latency_ms > 1.05 * best_p99 {
        violations.push(format!(
            "light load: adaptive p99 latency {:.3}ms exceeds 1.05x the best \
             static ({best_p99:.3}ms)",
            adaptive_low.p99_latency_ms
        ));
    }
    if adaptive_low.requests_per_second < 0.95 * unbatched_low.requests_per_second {
        violations.push(format!(
            "light load: adaptive throughput {:.1} req/s is below 0.95x \
             unbatched ({:.1} req/s)",
            adaptive_low.requests_per_second, unbatched_low.requests_per_second
        ));
    }
    if adaptive_low.batch_target > 1 || adaptive_low.target_raises > 0 {
        violations.push(format!(
            "light load: the controller ramped (target {}, {} raises) — \
             batching must stay off at 1 client",
            adaptive_low.batch_target, adaptive_low.target_raises
        ));
    }

    // Heavy load: amortisation and convergence.
    let adaptive_high = find(high, "adaptive").expect("checked above");
    let unbatched_high = find(high, "unbatched").expect("checked above");
    let best_static_tp = ["unbatched", "batched8", "replybatch"]
        .iter()
        .filter_map(|p| find(high, p))
        .map(|r| r.requests_per_second)
        .fold(0.0f64, f64::max);
    if adaptive_high.requests_per_second < 1.15 * unbatched_high.requests_per_second {
        violations.push(format!(
            "heavy load: adaptive throughput {:.1} req/s is not >=15% over \
             unbatched ({:.1} req/s)",
            adaptive_high.requests_per_second, unbatched_high.requests_per_second
        ));
    }
    // Sanity floor against the hand-tuned static (`replybatch` flushes
    // globally synchronised 64-deep rounds, which the rate-driven target
    // intentionally undershoots — it pays at most one `max_delay` of
    // latency where the static pays a full window): the adaptive run must
    // stay within 2x of it, without being required to match it.
    if adaptive_high.requests_per_second < 0.50 * best_static_tp {
        violations.push(format!(
            "heavy load: adaptive throughput {:.1} req/s is below half the \
             best static ({best_static_tp:.1} req/s)",
            adaptive_high.requests_per_second
        ));
    }
    if 2 * adaptive_high.order_messages_sent > unbatched_high.order_messages_sent {
        violations.push(format!(
            "heavy load: adaptive sent {} OrderMsgs, not at most half of \
             unbatched's {}",
            adaptive_high.order_messages_sent, unbatched_high.order_messages_sent
        ));
    }
    // The end-of-run target is back near 1 by design (the workload drained
    // and the idle decay kicked in), so convergence is judged by the raise
    // counter and the batches actually emitted, not the final target.
    if adaptive_high.target_raises == 0 {
        violations.push("heavy load: the controller never ramped (0 raises)".to_string());
    }
    if adaptive_high.effective_batch_peak < high as u64 {
        violations.push(format!(
            "heavy load: peak effective batch {} below the client count {high}",
            adaptive_high.effective_batch_peak
        ));
    }
    if adaptive_high.client_window_peak < ADAPTIVE_CLIENT_CAP as u64 {
        violations.push(format!(
            "heavy load: client windows peaked at {} instead of the cap {}",
            adaptive_high.client_window_peak, ADAPTIVE_CLIENT_CAP
        ));
    }
    violations
}

/// One row of the skewed sharded adaptive experiment (T-ADAPTIVE-SKEW): a
/// two-group range-partitioned deployment where almost all traffic lands in
/// one group, checking that the two sequencers' controllers converge
/// **independently**.
#[derive(Clone, Debug)]
pub struct AdaptiveSkewRow {
    /// Number of groups (2).
    pub groups: usize,
    /// Clients.
    pub clients: usize,
    /// Requests completed.
    pub requests: usize,
    /// Requests completed per group (router attribution).
    pub per_group_requests: Vec<u64>,
    /// Converged batch target per group (max over the group's servers — the
    /// sequencer carries the signal).
    pub per_group_batch_target: Vec<u64>,
    /// Peak effective `OrderMsg` batch per group.
    pub per_group_effective_batch: Vec<u64>,
    /// Controller raises per group.
    pub per_group_target_raises: Vec<u64>,
    /// Misrouted requests (must be 0).
    pub misroutes: u64,
    /// Whether the run completed with every group's propositions intact.
    pub consistent: bool,
}

/// Share of the skewed workload aimed at group 0 (the heavy group): 7 of 8
/// requests.
pub const SKEW_HEAVY_SHARE: usize = 8;

/// T-ADAPTIVE-SKEW: drives a 2-group range-partitioned deployment with
/// 7/8 of the traffic in group 0 and checks per-group convergence. Each
/// group's sequencer runs its own [`oar::adaptive::BatchController`] on its
/// own arrivals, and each client keeps one window controller per group, so
/// the heavy group converges to deep batches while the light one stays
/// (near-)unbatched.
pub fn adaptive_skew_experiment(
    clients: usize,
    requests_per_client: usize,
    seed: u64,
) -> AdaptiveSkewRow {
    let groups = 2;
    // Range partitioning over the sharded key pool: an even sample gives a
    // boundary near k32, so keys k00..k31 belong to group 0.
    let sample: Vec<String> = (0..SHARDED_KEY_SPACE).map(|i| format!("k{i:02}")).collect();
    let router = ShardRouter::range_from_keys(sample, groups);
    let config = ShardedConfig {
        num_groups: groups,
        servers_per_group: SHARDED_SERVERS_PER_GROUP,
        num_clients: clients,
        router,
        net: NetConfig::lan(),
        oar: OarConfig::adaptive(),
        seed,
        think_time: SimDuration::ZERO,
        client_pipeline: ADAPTIVE_CLIENT_CAP,
        adaptive_pipeline: true,
    };
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, |c| {
            (0..requests_per_client)
                .map(|i| {
                    // 7 of 8 requests hit the heavy half of the key space.
                    let key = if i % SKEW_HEAVY_SHARE == SKEW_HEAVY_SHARE - 1 {
                        format!("k{:02}", 32 + (c * 13 + i * 7) % 32)
                    } else {
                        format!("k{:02}", (c * 13 + i * 7) % 32)
                    };
                    if i % 4 == 3 {
                        KvCommand::Get { key }
                    } else {
                        KvCommand::Put {
                            key,
                            value: format!("c{c}-v{i}"),
                        }
                    }
                })
                .collect()
        });
    let done = cluster.run_to_completion(SimTime::from_secs(600));
    let consistent = done
        && cluster.check_per_group_consistency().is_ok()
        && cluster.check_external_consistency().is_ok();
    let mut per_group_requests = vec![0u64; groups];
    for done in cluster.completed_requests() {
        per_group_requests[done.group.index()] += 1;
    }
    AdaptiveSkewRow {
        groups,
        clients,
        requests: cluster.completed_requests().len(),
        per_group_requests,
        per_group_batch_target: (0..groups)
            .map(|g| cluster.max_group_stat(g, |st| st.batch_target))
            .collect(),
        per_group_effective_batch: (0..groups)
            .map(|g| cluster.max_group_stat(g, |st| st.effective_batch.peak()))
            .collect(),
        per_group_target_raises: (0..groups)
            .map(|g| cluster.sum_group_stats(g, |st| st.target_raises))
            .collect(),
        misroutes: cluster.total_misroutes(),
        consistent,
    }
}

/// Verifies the per-group independence gates of a T-ADAPTIVE-SKEW row;
/// returns every violation found (empty = pass).
pub fn check_adaptive_skew_bounds(
    row: &AdaptiveSkewRow,
    requests_per_client: usize,
) -> Vec<String> {
    let mut violations = Vec::new();
    let expected = (row.clients * requests_per_client) as u64;
    if !row.consistent {
        violations.push("skew run did not complete consistently".to_string());
    }
    if row.requests as u64 != expected {
        violations.push(format!(
            "skew run completed {} of {expected} requests",
            row.requests
        ));
    }
    if row.misroutes != 0 {
        violations.push(format!("{} misrouted requests (must be 0)", row.misroutes));
    }
    let heavy_req = row.per_group_requests.first().copied().unwrap_or(0);
    let light_req = row.per_group_requests.get(1).copied().unwrap_or(0);
    if heavy_req <= 3 * light_req {
        violations.push(format!(
            "workload not skewed enough: {heavy_req} vs {light_req} requests — \
             the independence gate would be vacuous"
        ));
    }
    let heavy_batch = row.per_group_effective_batch.first().copied().unwrap_or(0);
    let light_batch = row.per_group_effective_batch.get(1).copied().unwrap_or(0);
    if heavy_batch <= light_batch {
        violations.push(format!(
            "heavy group's peak batch ({heavy_batch}) does not exceed the \
             light group's ({light_batch}): controllers did not converge \
             independently"
        ));
    }
    let heavy_raises = row.per_group_target_raises.first().copied().unwrap_or(0);
    if heavy_raises == 0 {
        violations.push("heavy group's controller never ramped".to_string());
    }
    let light_target = row.per_group_batch_target.get(1).copied().unwrap_or(0);
    if light_target > 2 {
        violations.push(format!(
            "light group's target converged to {light_target}, expected to \
             stay near 1 under light load"
        ));
    }
    violations
}

/// One row of the parallel-apply benchmark (T-PARALLEL): one workload shape
/// executed with one worker count.
#[derive(Clone, Debug)]
pub struct ParallelRow {
    /// Workload shape: `disjoint` (pairwise non-conflicting writes) or
    /// `conflicting` (every write hits the same key).
    pub workload: String,
    /// Worker threads handed to `apply_batch` (1 = the serial baseline).
    pub workers: usize,
    /// Commands in the batch.
    pub commands: usize,
    /// Per-command CPU cost (FNV spin rounds).
    pub spin_rounds: u64,
    /// Per-command blocking cost (microseconds of sleep, modelling
    /// synchronous I/O in the apply stage).
    pub block_us: u64,
    /// Number of waves the conflict-graph scheduler planned.
    pub waves: usize,
    /// Size of the largest wave.
    pub max_wave: u64,
    /// Host wall-clock of one `apply_batch` call, milliseconds (minimum over
    /// the experiment's repeats).
    pub wall_ms: f64,
    /// Commands per second derived from the minimum wall-clock.
    pub ops_per_sec: f64,
    /// Whether every repeat produced responses and a final state identical
    /// to a plain serial `apply` of the same batch.
    pub matches_serial: bool,
}

/// Outcome of the cluster-level parallel-apply run (T-PARALLEL-CLUSTER): a
/// deployment with `with_parallel_apply` next to a serial twin on the same
/// seed.
#[derive(Clone, Debug)]
pub struct ParallelClusterRow {
    /// Number of replicas.
    pub servers: usize,
    /// Number of pipelined clients.
    pub clients: usize,
    /// Requests completed by the parallel deployment.
    pub requests: usize,
    /// Worker threads configured on the parallel deployment.
    pub workers: usize,
    /// Commands the scheduler executed in multi-command waves (size ≥ 2),
    /// summed over all servers — 0 would mean the conflict graph never
    /// exposed any concurrency.
    pub wave_commands: u64,
    /// Real wall-clock nanoseconds inside apply, parallel deployment.
    pub apply_ns: u64,
    /// Real wall-clock nanoseconds inside apply, serial twin.
    pub serial_apply_ns: u64,
    /// Whether every replica digest of the parallel run equals the serial
    /// twin's (bit-identical final state).
    pub digests_match: bool,
    /// Whether the completed responses (id, response, position, epoch) of
    /// the two runs are identical (bit-identical replies).
    pub responses_match: bool,
    /// Whether both runs completed with the propositions intact.
    pub consistent: bool,
}

/// Worker-pool size of the parallel-apply experiments and their CI gate.
pub const PARALLEL_WORKERS: usize = 4;

/// Per-command CPU spin of the T-PARALLEL rows: small but non-zero, so the
/// staged path demonstrably carries real compute.
pub const PARALLEL_SPIN_ROUNDS: u64 = 2_000;

/// Write-heavy multi-key batch for the apply benchmark. `disjoint` gives
/// every command its own key (every 8th a two-key `Multi`, still disjoint),
/// so the whole batch forms one wave; `conflicting` funnels every write
/// through one hot key, so every wave is a singleton.
fn parallel_apply_workload(kind: &str, commands: usize) -> Vec<KvCommand> {
    (0..commands)
        .map(|i| {
            if kind == "conflicting" {
                KvCommand::Put {
                    key: "hot".to_string(),
                    value: format!("v{i}"),
                }
            } else if i % 8 == 7 {
                KvCommand::Multi(vec![
                    KvCommand::Put {
                        key: format!("m{i}a"),
                        value: format!("v{i}a"),
                    },
                    KvCommand::Put {
                        key: format!("m{i}b"),
                        value: format!("v{i}b"),
                    },
                ])
            } else {
                KvCommand::Put {
                    key: format!("k{i}"),
                    value: format!("v{i}"),
                }
            }
        })
        .collect()
}

/// T-PARALLEL: wall-clock of `apply_batch` over a write-heavy multi-key
/// batch, serial (1 worker) vs the worker pool, on a pairwise-disjoint and a
/// fully-conflicting workload.
///
/// The per-command cost is [`CostlyMachine::with_blocking`]: `spin_rounds`
/// of CPU plus `block_us` of blocking sleep. The blocking component is what
/// the speedup gate rides on — it overlaps across workers even on a
/// single-core host, so the ≥1.8× bound of [`check_parallel_bounds`] holds
/// on minimal CI runners, where a pure CPU spin could not speed up at all.
/// Each row records the minimum wall-clock over `repeats` runs and checks
/// every run against a plain serial apply (bit-identical responses and
/// state).
pub fn parallel_apply_experiment(
    commands: usize,
    spin_rounds: u64,
    block_us: u64,
    repeats: usize,
) -> Vec<ParallelRow> {
    let mut rows = Vec::new();
    for kind in ["disjoint", "conflicting"] {
        let workload = parallel_apply_workload(kind, commands);
        let refs: Vec<&KvCommand> = workload.iter().collect();
        let waves = plan_waves(&refs);
        let max_wave = waves.iter().map(|w| w.len() as u64).max().unwrap_or(0);
        let mut reference = KvMachine::new();
        let expected: Vec<KvResponse> = refs.iter().map(|c| reference.apply(c).0).collect();
        for &workers in &[1usize, PARALLEL_WORKERS] {
            let mut wall_ms = f64::INFINITY;
            let mut matches_serial = true;
            for _ in 0..repeats.max(1) {
                let mut sm = CostlyMachine::with_blocking(KvMachine::new(), spin_rounds, block_us);
                let t0 = std::time::Instant::now();
                let out = sm.apply_batch(&refs, workers);
                wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1_000.0);
                let got: Vec<KvResponse> = out.results.into_iter().map(|(r, _)| r).collect();
                matches_serial &= got == expected && sm.inner() == &reference;
            }
            let secs = wall_ms / 1_000.0;
            rows.push(ParallelRow {
                workload: kind.to_string(),
                workers,
                commands,
                spin_rounds,
                block_us,
                waves: waves.len(),
                max_wave,
                wall_ms,
                ops_per_sec: if secs > 0.0 {
                    commands as f64 / secs
                } else {
                    0.0
                },
                matches_serial,
            });
        }
    }
    rows
}

/// Keys disjoint per client (so concurrent clients' writes schedule into
/// shared waves) with an every-8th write to one cross-client hot key (so
/// conflicting order still matters and a scheduling bug would corrupt the
/// digest).
fn parallel_cluster_workload(client: usize, requests: usize) -> Vec<KvCommand> {
    (0..requests)
        .map(|i| {
            if i % 8 == 7 {
                KvCommand::Put {
                    key: "hot".to_string(),
                    value: format!("c{client}-v{i}"),
                }
            } else {
                KvCommand::Put {
                    key: format!("c{client}-k{}", i % 4),
                    value: format!("c{client}-v{i}"),
                }
            }
        })
        .collect()
}

/// T-PARALLEL-CLUSTER: a full 3-replica deployment with
/// `with_parallel_apply(PARALLEL_WORKERS)` against a serial twin on the same
/// seed, workload and batching. Both must satisfy the consistency
/// propositions, and the parallel run's replica digests and completed
/// responses must be bit-identical to the twin's — parallel apply is an
/// execution strategy, never an observable protocol change.
pub fn parallel_cluster_experiment(
    clients: usize,
    requests_per_client: usize,
    seed: u64,
) -> ParallelClusterRow {
    let run = |workers: Option<usize>| {
        let mut builder = OarConfig::builder().max_batch(PIPELINE_DEPTH * clients);
        if let Some(w) = workers {
            builder = builder.with_parallel_apply(w);
        }
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: clients,
            net: NetConfig::lan(),
            oar: builder.build(),
            seed,
            client_pipeline: PIPELINE_DEPTH,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::build(&config, KvMachine::new, |c| {
            parallel_cluster_workload(c, requests_per_client)
        });
        let done = cluster.run_to_completion(SimTime::from_secs(600));
        (cluster, done)
    };
    let (parallel, parallel_done) = run(Some(PARALLEL_WORKERS));
    let (serial, serial_done) = run(None);
    let digests = |cluster: &Cluster<KvMachine>| -> Vec<u64> {
        cluster
            .servers
            .iter()
            .map(|&s| {
                cluster
                    .world
                    .process_ref::<OarServer<KvMachine>>(s)
                    .state_machine()
                    .digest()
            })
            .collect()
    };
    let responses = |cluster: &Cluster<KvMachine>| {
        let mut completed: Vec<_> = cluster
            .completed_requests()
            .iter()
            .map(|r| (r.id, r.response.clone(), r.position, r.epoch))
            .collect();
        completed.sort_by_key(|&(id, ..)| id);
        completed
    };
    let consistent = parallel_done
        && serial_done
        && parallel.check_replica_consistency().is_ok()
        && parallel.check_external_consistency().is_ok()
        && serial.check_replica_consistency().is_ok()
        && serial.check_external_consistency().is_ok();
    ParallelClusterRow {
        servers: 3,
        clients,
        requests: parallel.completed_requests().len(),
        workers: PARALLEL_WORKERS,
        wave_commands: parallel.total_parallel_wave_commands(),
        apply_ns: parallel.total_apply_ns(),
        serial_apply_ns: serial.total_apply_ns(),
        digests_match: digests(&parallel) == digests(&serial),
        responses_match: responses(&parallel) == responses(&serial),
        consistent,
    }
}

/// Verifies the T-PARALLEL gates; returns every violation found (empty =
/// pass). The CI `parallel-smoke` gate:
///
/// * every benchmark row is bit-identical to a serial apply of its batch;
/// * the scheduler's wave structure is the expected one — the disjoint
///   workload forms a single batch-wide wave, the conflicting one only
///   singletons;
/// * **disjoint speeds up**: ≥1.8× serial apply throughput at
///   [`PARALLEL_WORKERS`] workers;
/// * **conflicting stays at parity**: within ±10% of serial. Singleton
///   waves bypass the pool entirely and run the *identical* code path as
///   `workers = 1`, so parity is structural; the band only has to catch a
///   gross regression (e.g. singleton waves being routed through the pool,
///   which costs far more than 10%), and a wider band keeps the
///   sleep-based wall-clock comparison robust on loaded shared runners;
/// * the cluster run is consistent, actually executed multi-command waves,
///   and its digests and responses match the serial twin exactly.
pub fn check_parallel_bounds(rows: &[ParallelRow], cluster: &ParallelClusterRow) -> Vec<String> {
    let mut violations = Vec::new();
    for r in rows {
        if !r.matches_serial {
            violations.push(format!(
                "{} workload at {} workers diverged from serial apply",
                r.workload, r.workers
            ));
        }
    }
    let find = |workload: &str, workers: usize| {
        rows.iter()
            .find(|r| r.workload == workload && r.workers == workers)
    };
    match (find("disjoint", 1), find("disjoint", PARALLEL_WORKERS)) {
        (Some(serial), Some(parallel)) => {
            if parallel.waves != 1 || parallel.max_wave != parallel.commands as u64 {
                violations.push(format!(
                    "disjoint workload should form one batch-wide wave, got {} waves (max {})",
                    parallel.waves, parallel.max_wave
                ));
            }
            let speedup = parallel.ops_per_sec / serial.ops_per_sec;
            if speedup < 1.8 {
                violations.push(format!(
                    "disjoint speedup {speedup:.2}x at {PARALLEL_WORKERS} workers \
                     ({:.3} ms vs {:.3} ms serial), need >= 1.8x",
                    parallel.wall_ms, serial.wall_ms
                ));
            }
        }
        _ => violations.push("disjoint rows missing".to_string()),
    }
    match (
        find("conflicting", 1),
        find("conflicting", PARALLEL_WORKERS),
    ) {
        (Some(serial), Some(parallel)) => {
            if parallel.waves != parallel.commands || parallel.max_wave != 1 {
                violations.push(format!(
                    "conflicting workload should form only singleton waves, got {} waves (max {})",
                    parallel.waves, parallel.max_wave
                ));
            }
            let ratio = parallel.ops_per_sec / serial.ops_per_sec;
            if !(0.90..=1.10).contains(&ratio) {
                violations.push(format!(
                    "conflicting workload at {PARALLEL_WORKERS} workers runs at {ratio:.3}x \
                     serial ({:.3} ms vs {:.3} ms), need parity within 10%",
                    parallel.wall_ms, serial.wall_ms
                ));
            }
        }
        _ => violations.push("conflicting rows missing".to_string()),
    }
    if !cluster.consistent {
        violations.push("cluster run did not complete consistently".to_string());
    }
    if cluster.wave_commands == 0 {
        violations.push("cluster run never executed a multi-command wave".to_string());
    }
    if !cluster.digests_match {
        violations.push("parallel cluster digests differ from the serial twin".to_string());
    }
    if !cluster.responses_match {
        violations.push("parallel cluster responses differ from the serial twin".to_string());
    }
    violations
}

/// One row of the real-clock open-loop experiment (T-REALTIME).
#[derive(Clone, Debug)]
pub struct RealtimeRow {
    /// Number of replicas.
    pub servers: usize,
    /// Number of open-loop generators.
    pub clients: usize,
    /// Total offered load, requests per wall-clock second.
    pub offered_rate: f64,
    /// Requests submitted across all generators.
    pub submitted: usize,
    /// Requests completed (weighted quorum reached).
    pub requests: usize,
    /// Wall-clock duration of the whole run, milliseconds (spawn to stop).
    pub elapsed_ms: f64,
    /// Completed requests per wall-clock second, measured over the span from
    /// the first submission to the last completion.
    pub requests_per_second: f64,
    /// Client-observed latency summary (milliseconds, wall clock).
    pub latency_ms: Summary,
    /// Whether the run drained before the wall-clock cap.
    pub completed_run: bool,
    /// Whether the total-order / at-most-once / external-consistency
    /// propositions held on the post-run server states.
    pub consistent: bool,
    /// The first proposition violation, when `consistent` is false.
    pub consistency_error: Option<String>,
}

/// T-REALTIME: genuine wall-clock throughput and latency of the OAR group on
/// the `oar-rtnet` backend (one OS thread per process, real time, real
/// queues), under **open-loop** offered load.
///
/// The exact protocol code of the simulated experiments runs here — the
/// servers and the generator are written against the `Runtime` trait — so
/// this is the reproduction's reality check: the req/s and the latency tail
/// come from actual threads exchanging actual messages, not from the
/// simulator's latency model. Each generator offers one request every
/// `interarrival_us` µs on an absolute schedule (late timers are caught up
/// with a burst, keeping the offered rate honest), so queueing shows up in
/// the tail instead of throttling the load.
///
/// The failure detector runs with a widened timeout: on a loaded CI runner a
/// thread can stall past the simulator-tuned default, and this experiment
/// measures the failure-free path, not spurious fail-over.
pub fn realtime_experiment(
    servers: usize,
    clients: usize,
    requests_per_client: usize,
    interarrival_us: u64,
    seed: u64,
) -> RealtimeRow {
    let mut net: RtNet<oar::OarWire<KvCommand, KvResponse>> = RtNet::new(seed);
    let server_ids: Vec<ProcessId> = (0..servers).map(ProcessId::new).collect();
    let oar_config = OarConfig::builder()
        .fd_timeout(SimDuration::from_millis(500))
        .build();
    for &id in &server_ids {
        net.add_process(OarServer::new(
            id,
            server_ids.clone(),
            oar_config,
            KvMachine::default(),
        ));
    }
    let mut client_ids = Vec::new();
    for c in 0..clients {
        let client = OpenLoopClient::<KvMachine>::new(
            ProcessId::new(servers + c),
            server_ids.clone(),
            kv_workload(c, requests_per_client),
            SimDuration::from_micros(interarrival_us),
            oar::ClientConfig::default(),
        );
        client_ids
            .push(net.add_process_until(client, |cl: &OpenLoopClient<KvMachine>| cl.is_done()));
    }
    let report = net.run(RunOptions {
        max_wall: std::time::Duration::from_secs(60),
        grace: std::time::Duration::from_millis(300),
        poll: std::time::Duration::from_millis(5),
    });

    let mut latency = Samples::new();
    let mut submitted = 0;
    let mut completed = 0;
    let mut first_sent = SimTime::MAX;
    let mut last_done = SimTime::ZERO;
    let mut per_client: Vec<&[oar::CompletedRequest<KvResponse>]> = Vec::new();
    for &id in &client_ids {
        let client = report.process_ref::<OpenLoopClient<KvMachine>>(id);
        submitted += client.submitted();
        completed += client.completed().len();
        for done in client.completed() {
            latency.record_duration(done.latency());
            first_sent = first_sent.min(done.sent_at);
            last_done = last_done.max(done.completed_at);
        }
        per_client.push(client.completed());
    }
    let alive: Vec<&OarServer<KvMachine>> = server_ids
        .iter()
        .map(|&id| report.process_ref::<OarServer<KvMachine>>(id))
        .filter(|s| !s.is_recovering())
        .collect();
    let consistency = oar::check_server_consistency(&alive)
        .and_then(|()| oar::check_external_consistency(&alive, &per_client));
    let span_s = if last_done > first_sent {
        (last_done.as_micros() - first_sent.as_micros()) as f64 / 1e6
    } else {
        0.0
    };
    RealtimeRow {
        servers,
        clients,
        offered_rate: clients as f64 * 1e6 / interarrival_us as f64,
        submitted,
        requests: completed,
        elapsed_ms: report.elapsed.as_secs_f64() * 1_000.0,
        requests_per_second: if span_s > 0.0 {
            completed as f64 / span_s
        } else {
            0.0
        },
        latency_ms: latency.summary(),
        completed_run: report.completed,
        consistent: consistency.is_ok(),
        consistency_error: consistency.err(),
    }
}

/// Verifies the gates of a realtime row; returns every violation found
/// (empty = pass). Used by the CI realtime-smoke job: the open-loop run must
/// drain, report a positive wall-clock req/s, and keep the paper's
/// propositions on real threads.
pub fn check_realtime_bounds(
    row: &RealtimeRow,
    clients: usize,
    requests_per_client: usize,
) -> Vec<String> {
    let mut violations = Vec::new();
    if !row.completed_run {
        violations.push(format!(
            "run hit the wall-clock cap with {}/{} requests completed",
            row.requests,
            clients * requests_per_client
        ));
    }
    if row.requests != clients * requests_per_client {
        violations.push(format!(
            "expected {} completed requests, got {}",
            clients * requests_per_client,
            row.requests
        ));
    }
    if row.requests_per_second <= 0.0 {
        violations.push("measured req/s is not positive".to_string());
    }
    if let Some(err) = &row.consistency_error {
        violations.push(format!("propositions violated on rtnet: {err}"));
    }
    violations
}

/// One model-checking run: a scenario explored under one reduction setting,
/// with the explored/pruned counters the CI gate reads.
pub struct McRow {
    /// Row label (`clean-1x2`, `handoff-bug`, …).
    pub label: String,
    /// Scenario name as the `oar-mc` crate reports it.
    pub scenario: String,
    /// Partial-order reduction (sleep sets) on?
    pub por: bool,
    /// State deduplication on?
    pub dedup: bool,
    /// Distinct states visited.
    pub states_explored: u64,
    /// Transitions taken.
    pub transitions: u64,
    /// Transitions pruned by sleep sets.
    pub pruned_sleep: u64,
    /// States pruned as already visited.
    pub pruned_dedup: u64,
    /// Terminal states satisfying the goal (workload done).
    pub goal_states: u64,
    /// Terminal states violating termination.
    pub deadlocks: u64,
    /// Did the run hit its state bound?
    pub truncated: bool,
    /// Property violations found.
    pub violations: usize,
    /// Kind of the first violation (empty when none).
    pub violation_kind: String,
    /// For rows with a violation: does the counterexample trace replay on a
    /// plain (checker-free) world and reproduce the failure there? `true`
    /// for rows without violations.
    pub trace_replays: bool,
    /// Wall-clock time of the exploration (milliseconds).
    pub wall_ms: f64,
}

/// Runs one scenario under the given reduction settings and re-validates any
/// counterexample on a plain world: the trace is replayed step by step
/// (key-directed dispatch, no checker), the simulator then runs free to the
/// horizon, and the failure must reproduce — a safety violation as a failed
/// invariant, a deadlock as an unfinished workload.
fn mc_run(label: &str, scenario: &oar_mc::oar::OarScenario, por: bool, dedup: bool) -> McRow {
    use oar_mc::oar::{oar_invariant, HORIZON};

    let start = std::time::Instant::now();
    let report = scenario.run_with(por, dedup).expect("world must fork");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let first = report.violations.first();
    let trace_replays = match first {
        None => true,
        Some(violation) => {
            let mut world = scenario.world();
            let replayed =
                oar_mc::replay_trace(&mut world, &scenario.choices, &violation.trace, HORIZON);
            replayed
                && if violation.kind == "invariant" {
                    // A safety violation reproduces at the replayed state
                    // itself (running further may repair an *optimistic*
                    // divergence — that is what Opt-undeliver is for).
                    let invariant = oar_invariant(scenario.servers(), scenario.clients());
                    invariant(&world).is_err()
                } else {
                    // A deadlock reproduces as stuckness: let the plain
                    // simulator run free — the workload must not finish.
                    world.run_until(HORIZON);
                    !scenario.clients().iter().all(|&c| {
                        world
                            .process_ref::<oar::OarClient<oar::state_machine::CounterMachine>>(c)
                            .is_done()
                    })
                }
        }
    };
    McRow {
        label: label.to_string(),
        scenario: scenario.name.to_string(),
        por,
        dedup,
        states_explored: report.states_explored,
        transitions: report.transitions,
        pruned_sleep: report.pruned_sleep,
        pruned_dedup: report.pruned_dedup,
        goal_states: report.goal_states,
        deadlocks: report.deadlocks,
        truncated: report.truncated,
        violations: report.violations.len(),
        violation_kind: first.map(|v| v.kind.clone()).unwrap_or_default(),
        trace_replays,
        wall_ms,
    }
}

/// T-MC: bounded model checking of the OAR protocol over simnet.
///
/// Four row families (§ "Model checking" in `docs/ARCHITECTURE.md`):
///
/// * `clean-1x2` — exhaustive exploration of the failure-free 3-replica /
///   2-request configuration; every path must satisfy the four predicates
///   (total order, at-most-once, external consistency, termination).
/// * `clean-1x1-por` / `clean-1x1-raw` — the partial-order-reduction gate:
///   sleep sets alone (no dedup) explore the 1-request space exhaustively,
///   while the raw arm (no reduction at all) is capped at twice the reduced
///   state count plus one and must hit that cap — proving POR prunes more
///   than half of the raw interleavings.
/// * `handoff-bug` / `rejoin-bug` — the two historical bugs, re-found from
///   their test-only toggles; each counterexample must replay on a plain
///   world and reproduce the failure outside the checker.
/// * `handoff-fixed` / `rejoin-fixed` — the same fault scenarios with the
///   fixes active: zero violations within the state budget.
/// * `membership-change` — crash of one replica plus its online replacement
///   through a `Replace` fence: every path settles the fence, joins the
///   spare through the held-catch-up path and terminates.
pub fn mc_experiment(smoke: bool) -> Vec<McRow> {
    use oar_mc::oar::OarScenario;

    let mut rows = Vec::new();

    // Exhaustive failure-free gate.
    rows.push(mc_run("clean-1x2", &OarScenario::clean(1, 2), true, true));

    // POR ratio gate: reduced (sleep sets only) vs raw (nothing), the raw
    // arm bounded just above twice the reduced count.
    let reduced = mc_run("clean-1x1-por", &OarScenario::clean(1, 1), true, false);
    let mut raw_scenario = OarScenario::clean(1, 1);
    raw_scenario.mc.max_states = 2 * reduced.states_explored + 1;
    rows.push(reduced);
    rows.push(mc_run("clean-1x1-raw", &raw_scenario, false, false));

    // Historical bugs re-found, counterexamples replayed.
    rows.push(mc_run(
        "handoff-bug",
        &OarScenario::sequencer_handoff(true),
        true,
        true,
    ));
    rows.push(mc_run(
        "rejoin-bug",
        &OarScenario::mid_epoch_rejoin(true),
        true,
        true,
    ));

    // Control arms: the fixed protocol under the same faults. The full
    // spaces are large, so the smoke run caps them; the full run uses a
    // budget an order of magnitude wider.
    let cap = if smoke { 200_000 } else { 2_000_000 };
    let mut handoff = OarScenario::sequencer_handoff(false);
    handoff.mc.max_states = cap;
    rows.push(mc_run("handoff-fixed", &handoff, true, true));
    let mut rejoin = OarScenario::mid_epoch_rejoin(false);
    rejoin.mc.max_states = cap;
    rows.push(mc_run("rejoin-fixed", &rejoin, true, true));
    let mut membership = OarScenario::membership_change();
    membership.mc.max_states = cap;
    rows.push(mc_run("membership-change", &membership, true, true));

    rows
}

/// Verifies the gates of the model-checking rows; returns every violation
/// found (empty = pass). Used by the CI `mc-smoke` job.
pub fn check_mc_bounds(rows: &[McRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let find = |label: &str| rows.iter().find(|r| r.label == label);

    for row in rows {
        if row.states_explored == 0 {
            violations.push(format!("{}: explored no states", row.label));
        }
        let expect_bug = row.label.ends_with("-bug");
        if expect_bug {
            if row.violations == 0 {
                violations.push(format!(
                    "{}: the historical bug was not re-found",
                    row.label
                ));
            } else if !row.trace_replays {
                violations.push(format!(
                    "{}: counterexample trace does not reproduce on a plain world",
                    row.label
                ));
            }
        } else if row.violations > 0 {
            violations.push(format!(
                "{}: {} unexpected violation(s), first kind {}",
                row.label, row.violations, row.violation_kind
            ));
        }
    }

    if let Some(clean) = find("clean-1x2") {
        if clean.truncated {
            violations.push("clean-1x2: exploration did not finish (truncated)".into());
        }
        if clean.goal_states == 0 {
            violations.push("clean-1x2: no path reached the termination goal".into());
        }
        if clean.deadlocks > 0 {
            violations.push(format!("clean-1x2: {} deadlock(s)", clean.deadlocks));
        }
    } else {
        violations.push("clean-1x2 row missing".into());
    }

    match (find("clean-1x1-por"), find("clean-1x1-raw")) {
        (Some(reduced), Some(raw)) => {
            if reduced.truncated {
                violations.push("clean-1x1-por: reduced exploration truncated".into());
            }
            if reduced.pruned_sleep == 0 {
                violations.push("clean-1x1-por: sleep sets pruned nothing".into());
            }
            if !raw.truncated {
                violations.push(format!(
                    "POR gate: raw exploration finished within twice the reduced \
                     state count ({} raw vs {} reduced) — pruning below 50%",
                    raw.states_explored, reduced.states_explored
                ));
            }
        }
        _ => violations.push("POR gate rows missing".into()),
    }

    match find("handoff-bug") {
        Some(row) if row.violations > 0 && row.violation_kind != "deadlock" => {
            violations.push(format!(
                "handoff-bug: expected a deadlock (the phase-2 stall), found {}",
                row.violation_kind
            ));
        }
        _ => {}
    }
    match find("rejoin-bug") {
        Some(row) if row.violations > 0 && row.violation_kind != "invariant" => {
            violations.push(format!(
                "rejoin-bug: expected a safety violation (divergence), found {}",
                row.violation_kind
            ));
        }
        _ => {}
    }
    match find("membership-change") {
        Some(row) => {
            if row.deadlocks > 0 {
                violations.push(format!(
                    "membership-change: {} deadlock(s) — the fence wedged the epoch \
                     close or stranded the replacement",
                    row.deadlocks
                ));
            }
            if row.goal_states == 0 {
                violations.push("membership-change: no path reached the termination goal".into());
            }
        }
        None => violations.push("membership-change row missing".into()),
    }
    violations
}

/// One row of the reconfiguration experiment (T-RECONFIG): one of the three
/// scenarios — online replica replacement, key-range migration under
/// traffic, Merkle anti-entropy heal — with the counters its gate bounds.
/// Fields that a scenario does not exercise stay zero.
#[derive(Clone, Debug)]
pub struct ReconfigRow {
    /// Scenario label: `replace`, `migrate` or `anti-entropy`.
    pub scenario: String,
    /// Requests completed by the clients.
    pub requests: usize,
    /// Whether the workload drained within the deadline.
    pub completed_run: bool,
    /// Whether every consistency proposition held at quiesce.
    pub consistent: bool,
    /// Settled reconfiguration fences applied across all servers.
    pub reconfigs_applied: u64,
    /// Whether the replacement replica finished its catch-up (replace).
    pub rejoined: bool,
    /// `CatchUpReply` transfers served (replace; bounded — no retry storm).
    pub catch_up_replies: u64,
    /// Requests door-dropped and redirected for stale routing (migrate).
    pub redirected: u64,
    /// `MigrateState` transfer wires (migrate; bounded by s²).
    pub migrate_state_wires: u64,
    /// Replies a client adopted twice for one request id (migrate; must be 0).
    pub duplicates: u64,
    /// Anti-entropy root probes sent (anti-entropy).
    pub sync_probes: u64,
    /// Merkle descent wires, requests + replies (anti-entropy; O(log n)).
    pub sync_node_wires: u64,
    /// Divergent keys healed by majority vote (anti-entropy).
    pub sync_repairs: u64,
    /// Wall-clock of the scenario in milliseconds.
    pub wall_ms: f64,
}

/// T-RECONFIG, part 1: replace a crashed replica online, then crash a second
/// one — the fence settles conservatively, the replacement joins over the
/// `CatchUp*` wires and restores the fault budget, and the workload still
/// drains to the last request.
fn reconfig_replace_scenario(per_client: usize, seed: u64) -> ReconfigRow {
    use oar::state_machine::CounterCommand;
    let start = std::time::Instant::now();
    let clients = 2usize;
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: clients,
        net: NetConfig::constant(SimDuration::from_micros(150)),
        oar: OarConfig {
            epoch_cut_after: Some(4),
            snapshot_every: Some(2),
            ..OarConfig::with_fd_timeout(SimDuration::from_millis(20))
        },
        client_pipeline: 4,
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |c| {
            (0..per_client)
                .map(|i| CounterCommand::Add((c * 31 + i) as i64 % 11 + 1))
                .collect()
        });
    let old = cluster.servers[2];
    cluster.world.schedule_crash(old, SimTime::from_millis(2));
    cluster.world.run_until(SimTime::from_millis(4));
    let new = cluster.inject_replace(2, CounterCommand::Add(0), CounterMachine::default);
    // Wait for the fence to settle and the replacement to catch up, then
    // spend the restored fault budget on a second crash.
    let fence_deadline = SimTime::from_secs(5);
    loop {
        let step = cluster.world.now() + SimDuration::from_millis(5);
        cluster.world.run_until(step);
        let fenced = cluster.server(0).members() == [cluster.servers[0], cluster.servers[1], new];
        if (fenced && !cluster.server(2).is_recovering()) || cluster.world.now() >= fence_deadline {
            break;
        }
    }
    let rejoined = !cluster.server(2).is_recovering();
    cluster.world.crash_now(cluster.servers[1]);
    let done = cluster.run_to_completion(SimTime::from_secs(120));
    let consistent = done
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok();
    ReconfigRow {
        scenario: "replace".to_string(),
        requests: cluster.completed_requests().len(),
        completed_run: done,
        consistent,
        reconfigs_applied: cluster.total_reconfigs_applied(),
        rejoined,
        catch_up_replies: cluster.total_catch_up_replies(),
        redirected: 0,
        migrate_state_wires: 0,
        duplicates: 0,
        sync_probes: 0,
        sync_node_wires: 0,
        sync_repairs: 0,
        wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
    }
}

/// T-RECONFIG, part 2: migrate a key range between two groups while clients
/// hammer it — zero lost or duplicated replies, bounded `MigrateState`
/// transfer wires, stale traffic counted and redirected.
fn reconfig_migrate_scenario(per_client: usize, seed: u64) -> ReconfigRow {
    use oar::shard::KeyRange;
    let start = std::time::Instant::now();
    let clients = 3usize;
    let config = ShardedConfig {
        num_groups: 2,
        servers_per_group: 3,
        num_clients: clients,
        router: ShardRouter::range(vec!["m".into()]),
        net: NetConfig::lan(),
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(25)),
        seed,
        think_time: SimDuration::ZERO,
        client_pipeline: 2,
        adaptive_pipeline: false,
    };
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, |c| {
            (0..per_client)
                .map(|i| {
                    let key = if i % 2 == 0 {
                        format!("a{:02}", (c * 7 + i) % 24)
                    } else {
                        format!("n{:02}", (c * 7 + i) % 24)
                    };
                    if i % 5 == 4 {
                        KvCommand::Get { key }
                    } else {
                        KvCommand::Put {
                            key,
                            value: format!("c{c}i{i}"),
                        }
                    }
                })
                .collect()
        });
    cluster.world.run_until(SimTime::from_millis(2));
    let range = KeyRange::new("a00", "a12");
    cluster.inject_migrate(range, 0, 1, KvCommand::Get { key: "zz".into() });
    let done = cluster.run_to_completion(SimTime::from_secs(60));
    let settle = cluster.world.now() + SimDuration::from_millis(50);
    cluster.world.run_until(settle);
    // Lost or duplicated replies: a client that adopted two replies under
    // one request id duplicates; one that adopted fewer than its workload
    // lost (the latter also fails `completed_run`).
    let mut duplicates = 0u64;
    let mut requests = 0usize;
    for c in 0..clients {
        let completed = cluster.client(c).completed();
        requests += completed.len();
        let mut ids: Vec<_> = completed.iter().map(|d| d.request.id).collect();
        ids.sort();
        let unique = {
            ids.dedup();
            ids.len()
        };
        duplicates += (completed.len() - unique) as u64;
    }
    let consistent = done
        && cluster.check_per_group_consistency().is_ok()
        && cluster.check_external_consistency().is_ok()
        && cluster.total_misroutes() == 0;
    ReconfigRow {
        scenario: "migrate".to_string(),
        requests,
        completed_run: done,
        consistent,
        reconfigs_applied: cluster.total_reconfigs_applied(),
        rejoined: true,
        catch_up_replies: 0,
        redirected: cluster.total_redirected(),
        migrate_state_wires: cluster.total_migrate_state_wires(),
        duplicates,
        sync_probes: 0,
        sync_node_wires: 0,
        sync_repairs: 0,
        wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
    }
}

/// T-RECONFIG, part 3: inject a divergent settled value into one replica and
/// let the Merkle anti-entropy loop localise and heal it — the descent cost
/// must stay O(log n) in the key count.
fn reconfig_anti_entropy_scenario(per_client: usize, seed: u64) -> ReconfigRow {
    let start = std::time::Instant::now();
    let clients = 2usize;
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: clients,
        net: NetConfig::lan(),
        oar: OarConfig {
            anti_entropy: true,
            ..OarConfig::with_fd_timeout(SimDuration::from_millis(25))
        },
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<KvMachine> = Cluster::build(&config, KvMachine::new, |c| {
        (0..per_client)
            .map(|i| KvCommand::Put {
                key: format!("k{:02}", (c * 11 + i * 3) % 24),
                value: format!("c{c}i{i}"),
            })
            .collect()
    });
    let done = cluster.run_to_completion(SimTime::from_secs(30));
    let settle = cluster.world.now() + SimDuration::from_millis(100);
    cluster.world.run_until(settle);
    cluster.inject_divergence(1, "k05", Some("corrupted"));
    let heal = cluster.world.now() + SimDuration::from_millis(200);
    cluster.world.run_until(heal);
    let consistent = done
        && cluster.check_replica_consistency().is_ok()
        && cluster.check_external_consistency().is_ok();
    ReconfigRow {
        scenario: "anti-entropy".to_string(),
        requests: cluster.completed_requests().len(),
        completed_run: done,
        consistent,
        reconfigs_applied: 0,
        rejoined: true,
        catch_up_replies: 0,
        redirected: 0,
        migrate_state_wires: 0,
        duplicates: 0,
        sync_probes: cluster.total_sync_probes(),
        sync_node_wires: cluster.total_sync_node_wires(),
        sync_repairs: cluster.total_sync_repairs(),
        wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
    }
}

/// T-RECONFIG: membership reconfiguration, online shard rebalancing and
/// Merkle anti-entropy (§ "Reconfiguration & anti-entropy" in
/// `docs/ARCHITECTURE.md`). Three rows, one per scenario;
/// [`check_reconfig_bounds`] turns them into the CI verdict.
pub fn reconfig_experiment(per_client: usize, seed: u64) -> Vec<ReconfigRow> {
    vec![
        reconfig_replace_scenario(per_client, seed),
        reconfig_migrate_scenario(per_client, seed),
        reconfig_anti_entropy_scenario(per_client / 3, seed),
    ]
}

/// Verifies the gates of the reconfiguration rows; returns every violation
/// found (empty = pass). Used by the CI `reconfig-smoke` job.
pub fn check_reconfig_bounds(rows: &[ReconfigRow], per_client: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let find = |name: &str| rows.iter().find(|r| r.scenario == name);

    for row in rows {
        if !row.completed_run {
            violations.push(format!("{}: workload did not drain", row.scenario));
        }
        if !row.consistent {
            violations.push(format!("{}: consistency propositions failed", row.scenario));
        }
    }

    match find("replace") {
        Some(row) => {
            if row.requests != 2 * per_client {
                violations.push(format!(
                    "replace: completed {} of {} requests across the replacement \
                     and the further crash",
                    row.requests,
                    2 * per_client
                ));
            }
            if !row.rejoined {
                violations.push("replace: replacement still mid-catch-up".into());
            }
            if row.reconfigs_applied < 2 {
                violations.push(format!(
                    "replace: only {} fence applications (both survivors must apply)",
                    row.reconfigs_applied
                ));
            }
            if row.catch_up_replies > 8 {
                violations.push(format!(
                    "replace: {} CatchUpReply transfers for one replacement \
                     (retry storm?)",
                    row.catch_up_replies
                ));
            }
        }
        None => violations.push("replace row missing".into()),
    }

    match find("migrate") {
        Some(row) => {
            if row.requests != 3 * per_client {
                violations.push(format!(
                    "migrate: completed {} of {} requests across the migration",
                    row.requests,
                    3 * per_client
                ));
            }
            if row.duplicates > 0 {
                violations.push(format!(
                    "migrate: {} duplicated replies (at-most-once violated)",
                    row.duplicates
                ));
            }
            if row.redirected == 0 {
                violations.push("migrate: migration under traffic redirected nothing".into());
            }
            // Each donor replica ships the settled range to each recipient
            // member at most once: s² wires for s = 3.
            if row.migrate_state_wires > 9 {
                violations.push(format!(
                    "migrate: {} MigrateState wires exceed the s² bound 9",
                    row.migrate_state_wires
                ));
            }
        }
        None => violations.push("migrate row missing".into()),
    }

    match find("anti-entropy") {
        Some(row) => {
            if row.sync_probes == 0 {
                violations.push("anti-entropy: probes never ran".into());
            }
            if row.sync_repairs == 0 {
                violations.push("anti-entropy: injected divergence never healed".into());
            }
            // 24 distinct keys pad to 32 leaves (depth 5); each divergent
            // probe costs one root node plus at most 2 wires per level, and
            // a handful of probes race before the heal lands.
            let depth = 24u64.next_power_of_two().trailing_zeros() as u64;
            let bound = 12 * (2 * depth + 2);
            if row.sync_node_wires > bound {
                violations.push(format!(
                    "anti-entropy: descent cost {} exceeds the O(log n) bound {bound}",
                    row.sync_node_wires
                ));
            }
            if row.sync_node_wires < depth {
                violations.push(format!(
                    "anti-entropy: {} descent wires — the heal never walked the tree",
                    row.sync_node_wires
                ));
            }
        }
        None => violations.push("anti-entropy row missing".into()),
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_shape_matches_paper_claims() {
        let rows = latency_experiment(&[3], 30, 3);
        let mean = |protocol: &str| {
            rows.iter()
                .find(|r| r.protocol == protocol)
                .map(|r| r.latency_ms.mean)
                .expect("row present")
        };
        let oar = mean("oar");
        let seq = mean("fixed-sequencer");
        let ct = mean("ct-abcast");
        // OAR tracks the sequencer baseline within a factor of two and beats
        // the consensus-based broadcast.
        assert!(
            oar < ct,
            "OAR ({oar:.3} ms) should beat CT broadcast ({ct:.3} ms)"
        );
        assert!(
            oar < seq * 2.0,
            "OAR ({oar:.3} ms) should track the sequencer ({seq:.3} ms)"
        );
    }

    #[test]
    fn undo_rate_is_zero_without_partition() {
        let rows = undo_experiment(5);
        let failure_free = rows.iter().find(|r| r.scenario == "failure-free").unwrap();
        assert_eq!(failure_free.opt_undeliveries, 0);
        assert!(failure_free.consistent);
        let crash = rows
            .iter()
            .find(|r| r.scenario == "sequencer-crash")
            .unwrap();
        assert_eq!(
            crash.opt_undeliveries, 0,
            "a plain crash never forces undeliveries"
        );
        assert!(crash.consistent);
        let partition = rows
            .iter()
            .find(|r| r.scenario == "crash+minority-partition")
            .unwrap();
        assert!(partition.consistent);
        assert!(
            partition.undo_rate < 0.5,
            "undo stays rare even under the adversarial scenario"
        );
    }

    #[test]
    fn batched_sequencer_amortises_order_messages() {
        let rows = throughput_experiment(3, &[4], 25, 7);
        let row = |protocol: &str| rows.iter().find(|r| r.protocol == protocol).expect("row");
        let plain = row("oar");
        let batched = row("oar-batched");
        // Unbatched: one OrderMsg per request (modulo epoch boundaries).
        assert!(plain.order_messages_sent >= plain.requests as u64 * 9 / 10);
        // Batched: the ordering broadcast is amortised across requests.
        assert!(
            batched.order_messages_sent < batched.requests as u64,
            "batching should send fewer OrderMsgs ({}) than requests ({})",
            batched.order_messages_sent,
            batched.requests
        );
        // Both variants complete the full workload.
        assert_eq!(plain.requests, 100);
        assert_eq!(batched.requests, 100);
    }

    #[test]
    fn pipelined_clients_amortise_reply_messages() {
        let rows = throughput_experiment(3, &[4], 24, 7);
        let row = |protocol: &str| rows.iter().find(|r| r.protocol == protocol).expect("row");
        let plain = row("oar");
        let pipelined = row("oar-pipelined");
        // Every variant answers every request at every server.
        assert_eq!(plain.replies_sent, 3 * 96);
        assert_eq!(pipelined.replies_sent, 3 * 96);
        // Closed-loop: one ReplyBatch wire per request per server.
        assert_eq!(plain.reply_messages_sent, plain.replies_sent);
        // Pipelined + window-batched: a client's replies coalesce per
        // in-flight window. The acceptance ceiling is servers × clients ×
        // ceil(requests / PIPELINE_DEPTH), with 2x slack for partially
        // filled batches at epoch boundaries.
        let per_client = 24u64.div_ceil(PIPELINE_DEPTH as u64);
        let ceiling = 2 * 3 * 4 * per_client;
        assert!(
            pipelined.reply_messages_sent <= ceiling,
            "pipelined reply wires {} exceed the amortisation ceiling {ceiling}",
            pipelined.reply_messages_sent
        );
        assert!(
            pipelined.reply_messages_sent < plain.reply_messages_sent / 2,
            "reply batching should cut the wire count at least in half \
             ({} vs {})",
            pipelined.reply_messages_sent,
            plain.reply_messages_sent
        );
    }

    #[test]
    fn soak_bounds_hold_on_a_small_run() {
        let row = soak_experiment(4, 250, 11);
        assert!(row.consistent);
        assert_eq!(row.requests, 1000);
        assert!(row.epochs_per_server > 2.0, "epoch cuts must close epochs");
        assert!(row.payloads_pruned > 0, "the watermark GC must prune");
        let violations = check_soak_bounds(&row, 250);
        assert!(violations.is_empty(), "soak violations: {violations:?}");
        // The bound is about growth: peak payload memory stays far below the
        // total request count.
        assert!(
            row.peak_payloads < 1000 / 2,
            "peak payloads {} should be bounded by the epoch window, not the \
             workload size",
            row.peak_payloads
        );
    }

    #[test]
    fn sharded_throughput_scales_with_group_count() {
        let rows = sharded_experiment(&[1, 4], 2, 20, 9);
        let violations = check_sharded_bounds(&rows, 2, 20);
        assert!(violations.is_empty(), "sharded violations: {violations:?}");
        let row4 = rows.iter().find(|r| r.groups == 4).unwrap();
        assert_eq!(row4.requests, 4 * 2 * 20);
        assert_eq!(row4.misroutes, 0);
        // Every group ran its own sequencer: per-group ordering traffic is
        // non-zero wherever keys landed (the 64-key pool covers all groups).
        assert!(row4.per_group_order_messages.iter().all(|&o| o > 0));
        assert!(row4.per_group_wire_sent.iter().all(|&s| s > 0));
        assert_eq!(row4.per_group_reply_messages.len(), 4);
    }

    #[test]
    fn soak_tracks_seen_set_aging() {
        let row = soak_experiment(2, 120, 13);
        assert!(row.consistent);
        // The duplicate-suppression sets are aged out with the payloads:
        // their peak stays near the watermark window, far below the request
        // count, and the bound check accepts the run.
        assert!(row.peak_seen > 0);
        assert!(
            row.peak_seen < (2 * 120) as u64,
            "peak seen {} should be window-bounded, not workload-sized",
            row.peak_seen
        );
        assert!(check_soak_bounds(&row, 120).is_empty());
    }

    #[test]
    fn txn_fastpath_is_wire_identical_and_multi_group_commits_are_atomic() {
        let rows = txn_experiment(&[1, 2], 2, 8, 21);
        let violations = check_txn_bounds(&rows, 2, 8);
        assert!(violations.is_empty(), "txn violations: {violations:?}");
        let row1 = rows.iter().find(|r| r.groups == 1).unwrap();
        // One group: even the spanning workload collapses onto the fast
        // path, so no envelope ever travels.
        assert_eq!(row1.txn_prepares, 0);
        assert_eq!(row1.multi_group_txns, 0);
        let row2 = rows.iter().find(|r| r.groups == 2).unwrap();
        assert!(row2.multi_group_txns > 0, "the workload must span groups");
        assert_eq!(row2.fastpath_wires_txn, row2.fastpath_wires_plain);
        assert!(row2.mean_commit_latency_ms > 0.0);
    }

    #[test]
    fn parallel_apply_rows_stay_bit_identical_to_serial() {
        // Zero blocking cost: this asserts scheduling structure and
        // bit-identical execution only — the wall-clock gates live in the
        // harness (`parallel` / `parallel-smoke`), where timing variance
        // cannot flake `cargo test`.
        let rows = parallel_apply_experiment(24, 100, 0, 1);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.matches_serial));
        let disjoint = rows
            .iter()
            .find(|r| r.workload == "disjoint" && r.workers == PARALLEL_WORKERS)
            .unwrap();
        assert_eq!(disjoint.waves, 1);
        assert_eq!(disjoint.max_wave, 24);
        let conflicting = rows
            .iter()
            .find(|r| r.workload == "conflicting" && r.workers == PARALLEL_WORKERS)
            .unwrap();
        assert_eq!(conflicting.waves, 24);
        assert_eq!(conflicting.max_wave, 1);
    }

    #[test]
    fn parallel_cluster_twin_runs_agree() {
        let row = parallel_cluster_experiment(2, 16, 7);
        assert!(row.consistent);
        assert_eq!(row.requests, 2 * 16);
        assert!(row.digests_match, "parallel digests must equal the twin's");
        assert!(row.responses_match, "replies must be bit-identical");
        assert!(
            row.wave_commands > 0,
            "disjoint per-client keys must schedule multi-command waves"
        );
        assert!(row.apply_ns > 0 && row.serial_apply_ns > 0);
    }

    #[test]
    fn gc_ablation_runs_more_epochs_when_cutting() {
        let rows = gc_experiment(&[None, Some(5)], 20, 4);
        let never = rows.iter().find(|r| r.cut_after.is_none()).unwrap();
        let often = rows.iter().find(|r| r.cut_after == Some(5)).unwrap();
        assert!(never.consistent && often.consistent);
        assert!(
            often.epochs_per_server > never.epochs_per_server,
            "cutting epochs should complete more epochs ({} vs {})",
            often.epochs_per_server,
            never.epochs_per_server
        );
    }
}
