//! T-THROUGHPUT bench: wall-clock cost of the closed-loop throughput workload
//! as the number of concurrent clients grows, for the unbatched (`max_batch =
//! 1`, the paper's Fig. 6 behaviour) and batched sequencer. The cross-protocol
//! comparison is produced by `harness -- throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oar::OarConfig;
use oar_bench::experiments::build_throughput_cluster;
use oar_simnet::SimTime;

const SEED: u64 = 11;

/// Times only the protocol run; the consistency checks of the harness
/// experiment are exercised by `cargo test`, not inside the measured loop.
fn run_cluster(oar: OarConfig, clients: usize, requests_per_client: usize) -> usize {
    let mut cluster = build_throughput_cluster(oar, 3, clients, requests_per_client, SEED);
    assert!(cluster.run_to_completion(SimTime::from_secs(600)));
    cluster.completed_requests().len()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("oar_throughput");
    group.sample_size(10);
    let requests_per_client = 25usize;
    for &clients in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((clients * requests_per_client) as u64));
        group.bench_with_input(
            BenchmarkId::new("unbatched", clients),
            &clients,
            |b, &clients| {
                b.iter(|| run_cluster(OarConfig::default(), clients, requests_per_client))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched8", clients),
            &clients,
            |b, &clients| {
                b.iter(|| run_cluster(OarConfig::with_batching(8), clients, requests_per_client))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
