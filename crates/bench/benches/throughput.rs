//! T-THROUGHPUT bench: wall-clock cost of the closed-loop throughput workload
//! as the number of concurrent clients grows, for the unbatched (`max_batch =
//! 1`, the paper's Fig. 6 behaviour), batched-sequencer, and batched +
//! pipelined (reply-coalescing) variants. Each point also records the
//! protocol's traffic counters — `order_messages_sent`,
//! `reply_messages_sent`, `replies_sent`, `peak_payloads` — so the
//! `BENCH_throughput.json` trajectory shows the amortisation, not just the
//! timing. The cross-protocol comparison is produced by `harness --
//! throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oar::OarConfig;
use oar_bench::experiments::{
    build_sharded_cluster, build_throughput_cluster, build_txn_cluster, build_txn_plain_cluster,
    BATCHED_MAX_BATCH, PIPELINE_DEPTH,
};
use oar_simnet::SimTime;

const SEED: u64 = 11;

/// Times only the protocol run; the consistency checks of the harness
/// experiment are exercised by `cargo test`, not inside the measured loop.
fn run_cluster(
    oar: OarConfig,
    clients: usize,
    requests_per_client: usize,
    pipeline: usize,
) -> usize {
    let mut cluster =
        build_throughput_cluster(oar, 3, clients, requests_per_client, pipeline, SEED);
    assert!(cluster.run_to_completion(SimTime::from_secs(600)));
    cluster.completed_requests().len()
}

/// One un-timed instrumentation run of the same deployment, returning the
/// traffic counters attached to the bench point. Latency percentiles ride
/// along (in µs, the counters are integers) so the `BENCH_throughput.json`
/// trajectory shows the latency *cost* of each batching setting next to its
/// wire savings; adaptive runs additionally record their convergence
/// counters.
fn traffic_counters(
    oar: OarConfig,
    clients: usize,
    requests_per_client: usize,
    pipeline: usize,
) -> Vec<(String, u64)> {
    let mut cluster =
        build_throughput_cluster(oar, 3, clients, requests_per_client, pipeline, SEED);
    assert!(cluster.run_to_completion(SimTime::from_secs(600)));
    let lat = cluster.latencies();
    let us = |q: f64| (lat.quantile(q).unwrap_or(0.0) * 1_000.0).round() as u64;
    let mut counters = vec![
        (
            "order_messages_sent".to_string(),
            cluster.total_order_messages(),
        ),
        (
            "reply_messages_sent".to_string(),
            cluster.total_reply_messages(),
        ),
        ("replies_sent".to_string(), cluster.total_replies()),
        ("peak_payloads".to_string(), cluster.peak_payloads()),
        ("apply_ns".to_string(), cluster.total_apply_ns()),
        ("p50_latency_us".to_string(), us(0.5)),
        ("p95_latency_us".to_string(), us(0.95)),
        ("p99_latency_us".to_string(), us(0.99)),
    ];
    if oar.adaptive.is_some() {
        counters.extend([
            (
                "effective_batch_peak".to_string(),
                cluster.peak_effective_batch(),
            ),
            ("target_raises".to_string(), cluster.total_target_raises()),
            ("target_drops".to_string(), cluster.total_target_drops()),
            (
                "deadline_flushes".to_string(),
                cluster.total_deadline_flushes(),
            ),
            (
                "client_window_peak".to_string(),
                cluster.peak_client_window(),
            ),
        ]);
    }
    counters
}

/// Times one sharded run to completion (per-group checks live in the tests,
/// outside the measured loop).
fn run_sharded(groups: usize, clients_per_group: usize, requests_per_client: usize) -> usize {
    let mut cluster = build_sharded_cluster(groups, clients_per_group, requests_per_client, SEED);
    assert!(cluster.run_to_completion(SimTime::from_secs(600)));
    cluster.completed_requests().len()
}

/// Un-timed instrumentation run of the sharded deployment: aggregate
/// misroutes (must stay 0) plus per-group wire counters, so the
/// `BENCH_throughput.json` trajectory records how ordering and reply traffic
/// split across sequencers.
fn sharded_counters(
    groups: usize,
    clients_per_group: usize,
    requests_per_client: usize,
) -> Vec<(String, u64)> {
    let mut cluster = build_sharded_cluster(groups, clients_per_group, requests_per_client, SEED);
    assert!(cluster.run_to_completion(SimTime::from_secs(600)));
    let mut counters = vec![
        ("misroutes".to_string(), cluster.total_misroutes()),
        ("peak_seen".to_string(), cluster.peak_seen()),
        ("peak_payloads".to_string(), cluster.peak_payloads()),
    ];
    for g in 0..groups {
        counters.push((
            format!("g{g}_order_messages"),
            cluster.sum_group_stats(g, |st| st.order_messages_sent),
        ));
        counters.push((
            format!("g{g}_reply_messages"),
            cluster.sum_group_stats(g, |st| st.reply_messages_sent),
        ));
        counters.push((format!("g{g}_wire_sent"), cluster.group_net_stats(g).sent));
    }
    counters
}

/// Times one transactional run to completion (atomicity and consistency
/// checks live in the tests and the harness gate, outside the measured
/// loop).
fn run_txn(groups: usize, clients: usize, txns_per_client: usize, multi_group: bool) -> usize {
    let mut cluster = build_txn_cluster(groups, clients, txns_per_client, multi_group, SEED);
    assert!(cluster.run_to_completion(SimTime::from_secs(600)));
    cluster.completed_txns().len()
}

/// Un-timed instrumentation run of the fast path: the wire-identity pair
/// (transactional vs plain sharded client, identical commands), so the
/// `BENCH_throughput.json` trajectory records the fast-path overhead (the
/// two wire counters must stay equal, the envelope counter 0).
fn txn_fastpath_counters(
    groups: usize,
    clients: usize,
    txns_per_client: usize,
) -> Vec<(String, u64)> {
    let mut fast = build_txn_cluster(groups, clients, txns_per_client, false, SEED);
    assert!(fast.run_to_completion(SimTime::from_secs(600)));
    let mut plain = build_txn_plain_cluster(groups, clients, txns_per_client, SEED);
    assert!(plain.run_to_completion(SimTime::from_secs(600)));
    vec![
        ("fastpath_wires_txn".to_string(), fast.total_wires()),
        ("fastpath_wires_plain".to_string(), plain.world.stats().sent),
        (
            "fastpath_txn_prepares".to_string(),
            fast.total_txn_prepares(),
        ),
    ]
}

/// Un-timed instrumentation run of the multi-group commit: how many
/// transactions actually spanned groups, the prepare traffic, and the
/// misroute ceiling.
fn txn_multi_counters(groups: usize, clients: usize, txns_per_client: usize) -> Vec<(String, u64)> {
    let mut multi = build_txn_cluster(groups, clients, txns_per_client, true, SEED);
    assert!(multi.run_to_completion(SimTime::from_secs(600)));
    vec![
        (
            "multi_group_txns".to_string(),
            multi.multi_group_commits() as u64,
        ),
        ("txn_prepares".to_string(), multi.total_txn_prepares()),
        ("misroutes".to_string(), multi.total_misroutes()),
    ]
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("oar_throughput");
    group.sample_size(10);
    let requests_per_client = 25usize;
    for &clients in &[1usize, 2, 4, 8] {
        let variants: [(&str, OarConfig, usize); 4] = [
            ("unbatched", OarConfig::default(), 1),
            ("batched8", OarConfig::with_batching(BATCHED_MAX_BATCH), 1),
            (
                // Pipelined clients + window-sized sequencer batches: the
                // configuration whose replies coalesce into ReplyBatch wires.
                "replybatch8",
                OarConfig::with_batching(PIPELINE_DEPTH * clients),
                PIPELINE_DEPTH,
            ),
            (
                // The load-driven controller: batch threshold and client
                // windows adapt per run instead of being configured.
                "adaptive",
                OarConfig::adaptive(),
                PIPELINE_DEPTH,
            ),
        ];
        group.throughput(Throughput::Elements((clients * requests_per_client) as u64));
        for (name, oar, pipeline) in &variants {
            group.bench_with_input(BenchmarkId::new(*name, clients), &clients, |b, &clients| {
                b.iter(|| run_cluster(*oar, clients, requests_per_client, *pipeline))
            });
            group.attach_counters(traffic_counters(
                *oar,
                clients,
                requests_per_client,
                *pipeline,
            ));
        }
    }
    group.finish();

    // Sharded deployments: aggregate throughput at fixed per-group load as
    // the key space is partitioned over 1, 2 and 4 groups.
    let mut sharded = c.benchmark_group("sharded");
    sharded.sample_size(10);
    let clients_per_group = 2usize;
    for &groups in &[1usize, 2, 4] {
        sharded.throughput(Throughput::Elements(
            (groups * clients_per_group * requests_per_client) as u64,
        ));
        sharded.bench_with_input(BenchmarkId::new("hash", groups), &groups, |b, &groups| {
            b.iter(|| run_sharded(groups, clients_per_group, requests_per_client))
        });
        sharded.attach_counters(sharded_counters(
            groups,
            clients_per_group,
            requests_per_client,
        ));
    }
    sharded.finish();

    // Multi-key transactions: fast-path (single-group) and spanning
    // (multi-group) commit cost as the group count grows, with the
    // wire-identity counters attached to every point.
    let mut txn = c.benchmark_group("txn");
    txn.sample_size(10);
    let txn_clients = 2usize;
    let txns_per_client = 20usize;
    for &groups in &[1usize, 2, 4] {
        txn.throughput(Throughput::Elements((txn_clients * txns_per_client) as u64));
        txn.bench_with_input(
            BenchmarkId::new("fastpath", groups),
            &groups,
            |b, &groups| b.iter(|| run_txn(groups, txn_clients, txns_per_client, false)),
        );
        txn.attach_counters(txn_fastpath_counters(groups, txn_clients, txns_per_client));
        txn.bench_with_input(BenchmarkId::new("multi", groups), &groups, |b, &groups| {
            b.iter(|| run_txn(groups, txn_clients, txns_per_client, true))
        });
        txn.attach_counters(txn_multi_counters(groups, txn_clients, txns_per_client));
    }
    txn.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
