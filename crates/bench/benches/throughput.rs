//! T-THROUGHPUT bench: wall-clock cost of the closed-loop throughput workload
//! as the number of concurrent clients grows, for the unbatched (`max_batch =
//! 1`, the paper's Fig. 6 behaviour), batched-sequencer, and batched +
//! pipelined (reply-coalescing) variants. Each point also records the
//! protocol's traffic counters — `order_messages_sent`,
//! `reply_messages_sent`, `replies_sent`, `peak_payloads` — so the
//! `BENCH_throughput.json` trajectory shows the amortisation, not just the
//! timing. The cross-protocol comparison is produced by `harness --
//! throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oar::OarConfig;
use oar_bench::experiments::{build_throughput_cluster, BATCHED_MAX_BATCH, PIPELINE_DEPTH};
use oar_simnet::SimTime;

const SEED: u64 = 11;

/// Times only the protocol run; the consistency checks of the harness
/// experiment are exercised by `cargo test`, not inside the measured loop.
fn run_cluster(
    oar: OarConfig,
    clients: usize,
    requests_per_client: usize,
    pipeline: usize,
) -> usize {
    let mut cluster =
        build_throughput_cluster(oar, 3, clients, requests_per_client, pipeline, SEED);
    assert!(cluster.run_to_completion(SimTime::from_secs(600)));
    cluster.completed_requests().len()
}

/// One un-timed instrumentation run of the same deployment, returning the
/// traffic counters attached to the bench point.
fn traffic_counters(
    oar: OarConfig,
    clients: usize,
    requests_per_client: usize,
    pipeline: usize,
) -> [(&'static str, u64); 4] {
    let mut cluster =
        build_throughput_cluster(oar, 3, clients, requests_per_client, pipeline, SEED);
    assert!(cluster.run_to_completion(SimTime::from_secs(600)));
    [
        ("order_messages_sent", cluster.total_order_messages()),
        ("reply_messages_sent", cluster.total_reply_messages()),
        ("replies_sent", cluster.total_replies()),
        ("peak_payloads", cluster.peak_payloads()),
    ]
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("oar_throughput");
    group.sample_size(10);
    let requests_per_client = 25usize;
    for &clients in &[1usize, 2, 4, 8] {
        let variants: [(&str, OarConfig, usize); 3] = [
            ("unbatched", OarConfig::default(), 1),
            ("batched8", OarConfig::with_batching(BATCHED_MAX_BATCH), 1),
            (
                // Pipelined clients + window-sized sequencer batches: the
                // configuration whose replies coalesce into ReplyBatch wires.
                "replybatch8",
                OarConfig::with_batching(PIPELINE_DEPTH * clients),
                PIPELINE_DEPTH,
            ),
        ];
        group.throughput(Throughput::Elements((clients * requests_per_client) as u64));
        for (name, oar, pipeline) in &variants {
            group.bench_with_input(BenchmarkId::new(*name, clients), &clients, |b, &clients| {
                b.iter(|| run_cluster(*oar, clients, requests_per_client, *pipeline))
            });
            group.attach_counters(traffic_counters(
                *oar,
                clients,
                requests_per_client,
                *pipeline,
            ));
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
