//! T-THROUGHPUT bench: wall-clock cost of the closed-loop throughput workload
//! as the number of concurrent clients grows (OAR only; the cross-protocol
//! comparison is produced by `harness -- throughput`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oar::cluster::{Cluster, ClusterConfig};
use oar_apps::kv::{KvCommand, KvMachine};
use oar_simnet::{NetConfig, SimTime};

fn workload(client: usize, requests: usize) -> Vec<KvCommand> {
    (0..requests)
        .map(|i| KvCommand::Put { key: format!("k{}", i % 16), value: format!("{client}-{i}") })
        .collect()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("oar_throughput");
    group.sample_size(10);
    let requests_per_client = 25usize;
    for &clients in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((clients * requests_per_client) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &clients| {
            b.iter(|| {
                let config = ClusterConfig {
                    num_servers: 3,
                    num_clients: clients,
                    net: NetConfig::lan(),
                    seed: 11,
                    ..ClusterConfig::default()
                };
                let mut cluster: Cluster<KvMachine> =
                    Cluster::build(&config, KvMachine::new, |c| workload(c, requests_per_client));
                assert!(cluster.run_to_completion(SimTime::from_secs(600)));
                cluster.completed_requests().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
