//! Micro-benchmarks of the protocol's pure building blocks: the sequence
//! algebra and the `Cnsv-order` procedure. These bound the per-epoch CPU cost
//! that the §5.3 remark worries about when `O_delivered` grows long.
//!
//! Every indexed operation is benchmarked next to the seed's naive O(n·m)
//! implementation (kept in `oar_sequence::naive`), so one run shows the
//! asymptotic gap directly. The naive variants are capped at 8192 elements —
//! at 32768 a single naive `subtract` walks ~10⁹ element pairs, which is
//! precisely the behaviour the indexed representation removes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oar::cnsv_order::cnsv_order_outcome;
use oar::{CnsvValue, RequestId};
use oar_sequence::{dedup_append, naive, Seq};
use oar_simnet::ProcessId;

/// Largest size at which the O(n·m) reference implementations are still worth
/// timing.
const NAIVE_CAP: usize = 8192;

fn ids(range: std::ops::Range<u64>) -> Seq<RequestId> {
    range
        .map(|i| RequestId::new(ProcessId::new(99), i))
        .collect()
}

fn bench_sequence_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequence_algebra");
    group.sample_size(10);
    for &len in &[64usize, 512, 2048, 8192, 32768] {
        let a = ids(0..len as u64);
        let b = ids((len as u64 / 2)..(len as u64 * 3 / 2));
        group.bench_with_input(BenchmarkId::new("subtract", len), &len, |bench, _| {
            bench.iter(|| a.subtract(&b))
        });
        group.bench_with_input(BenchmarkId::new("dedup_append", len), &len, |bench, _| {
            bench.iter(|| dedup_append([a.clone(), b.clone()]))
        });
        group.bench_with_input(BenchmarkId::new("intersection", len), &len, |bench, _| {
            bench.iter(|| a.intersection(&b))
        });
        group.bench_with_input(BenchmarkId::new("common_prefix", len), &len, |bench, _| {
            bench.iter(|| a.common_prefix(&b))
        });
        group.bench_with_input(BenchmarkId::new("contains_miss", len), &len, |bench, _| {
            let probe = RequestId::new(ProcessId::new(98), 0);
            bench.iter(|| a.contains(&probe))
        });

        if len <= NAIVE_CAP {
            let av = a.as_slice().to_vec();
            let bv = b.as_slice().to_vec();
            group.bench_with_input(BenchmarkId::new("subtract_naive", len), &len, |bench, _| {
                bench.iter(|| naive::subtract(&av, &bv))
            });
            group.bench_with_input(
                BenchmarkId::new("dedup_append_naive", len),
                &len,
                |bench, _| bench.iter(|| naive::dedup_append(&[av.clone(), bv.clone()])),
            );
            group.bench_with_input(
                BenchmarkId::new("intersection_naive", len),
                &len,
                |bench, _| bench.iter(|| naive::intersection(&av, &bv)),
            );
            group.bench_with_input(
                BenchmarkId::new("contains_miss_naive", len),
                &len,
                |bench, _| {
                    let probe = RequestId::new(ProcessId::new(98), 0);
                    bench.iter(|| naive::contains(&av, &probe))
                },
            );
        }
    }
    group.finish();
}

fn bench_cnsv_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnsv_order");
    group.sample_size(10);
    for &epoch_len in &[16usize, 128, 1024, 8192, 32768] {
        // Three contributors: one saw everything, two lag behind with pending
        // tails — the common shape of a phase-2 epoch.
        let full = ids(0..epoch_len as u64);
        let short = ids(0..(epoch_len as u64 / 2));
        let pending = ids((epoch_len as u64 / 2)..epoch_len as u64);
        let decision = vec![
            (
                ProcessId::new(0),
                CnsvValue {
                    o_delivered: full.clone(),
                    o_notdelivered: Seq::new(),
                },
            ),
            (
                ProcessId::new(1),
                CnsvValue {
                    o_delivered: short.clone(),
                    o_notdelivered: pending.clone(),
                },
            ),
            (
                ProcessId::new(2),
                CnsvValue {
                    o_delivered: short.clone(),
                    o_notdelivered: pending.clone(),
                },
            ),
        ];
        group.bench_with_input(
            BenchmarkId::new("lagging_replica", epoch_len),
            &epoch_len,
            |bench, _| bench.iter(|| cnsv_order_outcome(&short, &decision)),
        );
        group.bench_with_input(
            BenchmarkId::new("up_to_date_replica", epoch_len),
            &epoch_len,
            |bench, _| bench.iter(|| cnsv_order_outcome(&full, &decision)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequence_algebra, bench_cnsv_order);
criterion_main!(benches);
