//! T-LAT bench: wall-clock cost of running the failure-free latency workload
//! (the same deployments as `harness -- latency`, Criterion-timed). The
//! simulated client latencies themselves are reported by the harness binary;
//! this bench tracks the cost of the protocols as executable artifacts, per
//! replica count and per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oar::cluster::{Cluster, ClusterConfig};
use oar_apps::kv::{KvCommand, KvMachine};
use oar_baselines::{BaselineConfig, CtCluster, SequencerCluster};
use oar_simnet::{NetConfig, SimTime};

fn workload(client: usize, requests: usize) -> Vec<KvCommand> {
    (0..requests)
        .map(|i| KvCommand::Put {
            key: format!("k{}", i % 8),
            value: format!("{client}-{i}"),
        })
        .collect()
}

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("failure_free_run");
    group.sample_size(10);
    for &n in &[3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::new("oar", n), &n, |b, &n| {
            b.iter(|| {
                let config = ClusterConfig {
                    num_servers: n,
                    num_clients: 2,
                    net: NetConfig::lan(),
                    seed: 7,
                    ..ClusterConfig::default()
                };
                let mut cluster: Cluster<KvMachine> =
                    Cluster::build(&config, KvMachine::new, |c| workload(c, 25));
                assert!(cluster.run_to_completion(SimTime::from_secs(300)));
                cluster.latencies().mean()
            })
        });
        group.bench_with_input(BenchmarkId::new("fixed_sequencer", n), &n, |b, &n| {
            b.iter(|| {
                let config = BaselineConfig {
                    num_servers: n,
                    num_clients: 2,
                    net: NetConfig::lan(),
                    seed: 7,
                    ..BaselineConfig::default()
                };
                let mut cluster: SequencerCluster<KvMachine> =
                    SequencerCluster::build(&config, KvMachine::new, |c| workload(c, 25));
                assert!(cluster.run_to_completion(SimTime::from_secs(300)));
                cluster.latencies().mean()
            })
        });
        group.bench_with_input(BenchmarkId::new("ct_abcast", n), &n, |b, &n| {
            b.iter(|| {
                let config = BaselineConfig {
                    num_servers: n,
                    num_clients: 2,
                    net: NetConfig::lan(),
                    seed: 7,
                    ..BaselineConfig::default()
                };
                let mut cluster: CtCluster<KvMachine> =
                    CtCluster::build(&config, KvMachine::new, |c| workload(c, 25));
                assert!(cluster.run_to_completion(SimTime::from_secs(300)));
                cluster.latencies().mean()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
