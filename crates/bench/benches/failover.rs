//! T-FAILOVER bench: wall-clock cost of a run that includes a sequencer crash
//! and the resulting conservative phase, per failure-detector timeout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oar::cluster::{Cluster, ClusterConfig};
use oar::state_machine::{CounterCommand, CounterMachine};
use oar::OarConfig;
use oar_simnet::{NetConfig, ProcessId, SimDuration, SimTime};

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequencer_crash_recovery");
    group.sample_size(10);
    for &timeout_ms in &[10u64, 25, 50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(timeout_ms),
            &timeout_ms,
            |b, &timeout_ms| {
                b.iter(|| {
                    let config = ClusterConfig {
                        num_servers: 3,
                        num_clients: 1,
                        net: NetConfig::lan(),
                        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(timeout_ms)),
                        seed: 5,
                        ..ClusterConfig::default()
                    };
                    let workload: Vec<CounterCommand> =
                        (0..30).map(|i| CounterCommand::Add(i + 1)).collect();
                    let mut cluster: Cluster<CounterMachine> =
                        Cluster::build(&config, CounterMachine::default, |_| workload.clone());
                    cluster
                        .world
                        .schedule_crash(ProcessId::new(0), SimTime::from_millis(5));
                    assert!(cluster.run_to_completion(SimTime::from_secs(300)));
                    cluster.check_replica_consistency().unwrap();
                    cluster.total_phase2_entries()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_failover);
criterion_main!(benches);
