//! Minimal, dependency-free stand-in for the subset of the [`criterion`]
//! crate API used by this workspace's benches.
//!
//! The build environment has no access to crates.io, so the `benches/`
//! targets link against this crate instead (the package is `oar-criterion`,
//! the library target keeps the `criterion` name so the bench sources are
//! unchanged).
//!
//! Behaviour:
//!
//! * when the binary is run **with** `--bench` (what `cargo bench` does), each
//!   benchmark point is warmed up, calibrated to ~2 ms per sample and measured
//!   over `sample_size` samples; mean and minimum per-iteration times are
//!   printed and collected;
//! * when run **without** `--bench` (e.g. `cargo test --benches`), every point
//!   runs exactly once as a smoke test;
//! * on exit, [`Criterion::finalize`] writes every measurement to
//!   `BENCH_<bench-name>.json` in the current directory (override the
//!   directory with `OAR_BENCH_OUT_DIR`), giving the repository a trajectory
//!   point per run.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark point within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just `<parameter>`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Throughput annotation for a benchmark point.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Group name.
    pub group: String,
    /// Point id within the group.
    pub id: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Number of samples.
    pub samples: u64,
    /// Elements per iteration, if a throughput was declared.
    pub elements: Option<u64>,
    /// Named workload counters attached by the bench (e.g. wire-message
    /// counts), serialised into the JSON report. Extension over the real
    /// criterion API: lets a bench record protocol-level quantities next to
    /// its timings so the repository's `BENCH_*.json` trajectory captures
    /// both.
    pub counters: Vec<(String, u64)>,
}

/// The benchmark driver. One instance per bench binary.
pub struct Criterion {
    measurements: Vec<Measurement>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the target with `--bench`; anything else
        // (e.g. `cargo test --benches`) gets a single-iteration smoke run.
        let smoke = !std::env::args().any(|a| a == "--bench");
        Criterion {
            measurements: Vec::new(),
            smoke,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmark points.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id: BenchmarkId = id.into();
        let mut group = self.benchmark_group("");
        group.bench_with_input(id, &(), move |b, _| f(b));
        group.finish();
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Prints a summary and writes `BENCH_<name>.json` (skipped in smoke
    /// mode). Called by [`criterion_main!`].
    pub fn finalize(&self) {
        if self.smoke || self.measurements.is_empty() {
            return;
        }
        let name = bench_name();
        let dir = std::env::var("OAR_BENCH_OUT_DIR").unwrap_or_else(|_| workspace_root());
        let path = format!("{dir}/BENCH_{name}.json");
        let mut rows = Vec::new();
        for m in &self.measurements {
            let elements = m.elements.map_or("null".to_string(), |e| e.to_string());
            let counters = if m.counters.is_empty() {
                String::new()
            } else {
                let fields: Vec<String> = m
                    .counters
                    .iter()
                    .map(|(k, v)| format!("\"{k}\":{v}"))
                    .collect();
                format!(",\"counters\":{{{}}}", fields.join(","))
            };
            rows.push(format!(
                concat!(
                    "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{:.1},",
                    "\"min_ns\":{:.1},\"iters_per_sample\":{},\"samples\":{},",
                    "\"elements\":{}{}}}"
                ),
                m.group,
                m.id,
                m.mean_ns,
                m.min_ns,
                m.iters_per_sample,
                m.samples,
                elements,
                counters
            ));
        }
        let json = format!(
            "{{\"bench\":\"{name}\",\"results\":[\n{}\n]}}\n",
            rows.join(",\n")
        );
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// The directory the JSON report defaults to: the nearest ancestor of the
/// bench's working directory whose `Cargo.toml` declares `[workspace]` (cargo
/// runs bench binaries with the *package* directory as CWD), falling back to
/// the working directory itself.
fn workspace_root() -> String {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return dir.display().to_string();
            }
        }
        if !dir.pop() {
            return ".".to_string();
        }
    }
}

/// The bench binary's logical name: the executable stem minus cargo's
/// trailing `-<hash>`.
fn bench_name() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// A group of benchmark points sharing a name and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per point (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work done per iteration, for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(match throughput {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        });
        self
    }

    /// Measures `f` with the given input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            smoke: self.criterion.smoke,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher, input);
        if let Some((mean_ns, min_ns, iters, samples)) = bencher.result {
            let label = if self.name.is_empty() {
                id.id.clone()
            } else {
                format!("{}/{}", self.name, id.id)
            };
            println!(
                "{label:<48} mean {:>12.1} ns   min {:>12.1} ns",
                mean_ns, min_ns
            );
            self.criterion.measurements.push(Measurement {
                group: self.name.clone(),
                id: id.id,
                mean_ns,
                min_ns,
                iters_per_sample: iters,
                samples,
                elements: self.throughput,
                counters: Vec::new(),
            });
        }
        self
    }

    /// Attaches named workload counters to the most recently recorded point
    /// (no-op if nothing was recorded). Extension over the real criterion
    /// API; see [`Measurement::counters`].
    pub fn attach_counters<K: Into<String>>(
        &mut self,
        counters: impl IntoIterator<Item = (K, u64)>,
    ) -> &mut Self {
        if let Some(last) = self.criterion.measurements.last_mut() {
            last.counters
                .extend(counters.into_iter().map(|(k, v)| (k.into(), v)));
        }
        self
    }

    /// Measures `f` without an input value.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.bench_with_input(id, &(), move |b, _| f(b))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the measured closure; its [`iter`](Bencher::iter) method runs
/// and times the workload.
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    /// (mean_ns, min_ns, iters_per_sample, samples)
    result: Option<(f64, f64, u64, u64)>,
}

impl Bencher {
    /// Times `f`, storing the measurement in the group.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.smoke {
            black_box(f());
            self.result = Some((0.0, 0.0, 1, 1));
            return;
        }
        // Warm-up + calibration: aim for ~2 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let single = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let iters: u64 = if single >= target {
            1
        } else {
            (target.as_nanos() / single.as_nanos()).clamp(1, 10_000_000) as u64
        };
        let samples = self.sample_size as u64;
        let mut total_ns: u128 = 0;
        let mut min_sample_ns: u128 = u128::MAX;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos();
            total_ns += ns;
            min_sample_ns = min_sample_ns.min(ns);
        }
        let mean_ns = total_ns as f64 / (samples * iters) as f64;
        let min_ns = min_sample_ns as f64 / iters as f64;
        self.result = Some((mean_ns, min_ns, iters, samples));
    }
}

/// Groups bench functions under one name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates the bench binary's `main`, running every group then writing the
/// JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("subtract", 64).id, "subtract/64");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            measurements: Vec::new(),
            smoke: true,
        };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::new("f", 1), &(), |b, _| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
        assert_eq!(c.measurements().len(), 1);
    }

    #[test]
    fn measure_mode_records_timing() {
        let mut c = Criterion {
            measurements: Vec::new(),
            smoke: false,
        };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("spin", 0), &(), |b, _| {
                b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
            });
            g.finish();
        }
        let m = &c.measurements()[0];
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns * 1.5);
        assert_eq!(m.elements, Some(10));
        assert_eq!(m.samples, 3);
    }
}
