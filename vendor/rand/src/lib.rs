//! Minimal, dependency-free stand-in for the subset of the [`rand`] crate API
//! that this workspace uses.
//!
//! The build environment has no access to crates.io, so the simulator's
//! deterministic RNG and the test suites link against this crate instead (the
//! package is `oar-rand`, the library target keeps the `rand` name so that the
//! `use rand::…` call sites are unchanged).
//!
//! Provided API surface:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator (deterministic, seedable);
//! * [`SeedableRng::seed_from_u64`], [`RngCore::next_u64`] / `next_u32`;
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] / `choose`.
//!
//! The implementation is intentionally small; statistical quality comes from
//! xoshiro256++ (Blackman & Vigna), which is more than adequate for the
//! simulation and property-test workloads here.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the `rand` crate's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled to produce a uniformly distributed value.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                // The only full-width case in practice is u64/i64; a single
                // next_u64 covers it exactly.
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is
        /// empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
        // full-width inclusive range must not panic
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully ordered");
    }

    #[test]
    fn choose_returns_member() {
        let mut r = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        assert!(v.contains(v.as_slice().choose(&mut r).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut r).is_none());
    }
}
