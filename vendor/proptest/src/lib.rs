//! Minimal, dependency-free stand-in for the subset of the [`proptest`] crate
//! API used by this workspace.
//!
//! The build environment has no access to crates.io, so the property-test
//! suites link against this crate instead (the package is `oar-proptest`, the
//! library target keeps the `proptest` name so the `use proptest::…` call
//! sites are unchanged).
//!
//! Semantics compared to real proptest:
//!
//! * **deterministic**: every test case derives its RNG seed from the test's
//!   module path and the case index, so failures reproduce exactly;
//! * **no shrinking**: a failing case reports the panic as-is;
//! * the strategy combinators implemented are exactly the ones the workspace
//!   uses: ranges, [`strategy::Just`], tuples, `prop_map`, `prop_flat_map`,
//!   [`prop_oneof!`], [`collection::vec`], [`option::of`], [`strategy::any`]
//!   and simple `"[a-z]{1,4}"`-style string patterns.
//!
//! Set `PROPTEST_CASES` to override the default number of cases (256).
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the per-case RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by the [`proptest!`](crate::proptest) macro.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG handed to strategies while generating one case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for case number `case` of the property named `name`.
        ///
        /// The seed is a hash of both, so each property gets an independent,
        /// reproducible stream.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// A uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between several strategies of the same value type
    /// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
    #[derive(Clone)]
    pub struct Union<V> {
        choices: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds the union; `choices` must be non-empty.
        pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            Union { choices }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Full-range generation for primitive types (`any::<u64>()`, …).
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = rng.next_u64() as u128 % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    let v = rng.next_u64() as u128 % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )+};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String patterns: a `&'static str` is a strategy generating strings
    /// matching a tiny regex subset — literal characters, `[a-z0-9_]`-style
    /// classes (with ranges) and `{m}` / `{m,n}` repetition of the previous
    /// atom. This covers the patterns the workspace's suites use; anything
    /// unparsable is emitted literally.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        #[derive(Debug)]
        enum Atom {
            Literal(char),
            Class(Vec<char>),
        }

        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new(); // atom, min, max reps
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = match chars[i + 1..].iter().position(|&c| c == ']') {
                        Some(off) => i + 1 + off,
                        None => {
                            atoms.push((Atom::Literal('['), 1, 1));
                            i += 1;
                            continue;
                        }
                    };
                    let mut set = Vec::new();
                    let inner = &chars[i + 1..close];
                    let mut j = 0;
                    while j < inner.len() {
                        if j + 2 < inner.len() && inner[j + 1] == '-' {
                            let (lo, hi) = (inner[j] as u32, inner[j + 2] as u32);
                            for c in lo..=hi {
                                if let Some(c) = char::from_u32(c) {
                                    set.push(c);
                                }
                            }
                            j += 3;
                        } else {
                            set.push(inner[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(set)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // optional {m} / {m,n} quantifier
            let (mut min, mut max) = (1usize, 1usize);
            if i < chars.len() && chars[i] == '{' {
                if let Some(off) = chars[i + 1..].iter().position(|&c| c == '}') {
                    let body: String = chars[i + 1..i + 1 + off].iter().collect();
                    let parts: Vec<&str> = body.split(',').collect();
                    let parsed: Option<(usize, usize)> = match parts.as_slice() {
                        [m] => m.trim().parse().ok().map(|m| (m, m)),
                        [m, n] => match (m.trim().parse(), n.trim().parse()) {
                            (Ok(m), Ok(n)) => Some((m, n)),
                            _ => None,
                        },
                        _ => None,
                    };
                    if let Some((m, n)) = parsed {
                        min = m;
                        max = n.max(m);
                        i += off + 2;
                    }
                }
            }
            atoms.push((atom, min, max));
        }

        let mut out = String::new();
        for (atom, min, max) in atoms {
            let reps = if max > min {
                min + rng.below((max - min + 1) as u64) as usize
            } else {
                min
            };
            for _ in 0..reps {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) if !set.is_empty() => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Class(_) => {}
                }
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
    );
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification for [`vec`](fn@vec): an exact size, `lo..hi` or
    /// `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.hi > self.size.lo {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            } else {
                self.size.lo
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Option`s of values from the inner strategy.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match real proptest's default: None with probability 1/4.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` imports.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Mirrors the `proptest!` macro of the real crate:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0u8..5, 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case_idx in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case_idx,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `prop_oneof!` — uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// `prop_assert!` — like `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_assume!` — skips the current case when the assumption fails.
///
/// Expands to `continue` targeting the per-case loop generated by
/// [`proptest!`], so it is only valid directly inside a property body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("self-test", 0);
        for _ in 0..200 {
            let (a, b) = (0u8..10, 5usize..=9).generate(&mut rng);
            assert!(a < 10);
            assert!((5..=9).contains(&b));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::for_case("self-test-pattern", 0);
        for _ in 0..100 {
            let s = "[a-z]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase()),
                "bad chars: {s:?}"
            );
        }
    }

    #[test]
    fn oneof_covers_all_choices() {
        let mut rng = TestRng::for_case("self-test-oneof", 0);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro wires strategies, assumptions and assertions together.
        #[test]
        fn macro_works(x in 1u32..100, v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assume!(x != 50);
            prop_assert!((1..100).contains(&x));
            prop_assert_ne!(x, 50);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
