//! Replays the paper's execution scenarios (Figures 1–4) and prints their
//! annotated timelines, the textual counterpart of the paper's space-time
//! diagrams.
//!
//! ```text
//! cargo run -p oar-examples --example figure_scenarios
//! ```

use oar_bench::figures;

fn main() {
    for outcome in figures::all_figures(20010614) {
        println!("==================================================================");
        println!(
            "{}: servers={} completed={} undeliveries={} phase2={} client-inconsistencies={} as-expected={}",
            outcome.id,
            outcome.servers,
            outcome.completed_requests,
            outcome.undeliveries,
            outcome.phase2_entries,
            outcome.client_inconsistencies,
            outcome.consistent
        );
        println!("------------------------------------------------------------------");
        print!("{}", outcome.timeline);
    }
    println!("==================================================================");
    println!("fig1b shows the fixed-sequencer baseline leaking an inconsistent reply;");
    println!("fig1b-oar shows OAR preventing exactly that; fig3 exercises the");
    println!("conservative phase without undeliveries; fig4 forces Opt-undeliver.");
}
