//! Runnable examples for the OAR reproduction; see the example binaries.
