//! A cross-group bank transfer: account balances sharded over two OAR
//! groups by a range router, with every transfer a two-key transaction —
//! one leg per group — committed by the client-side transaction layer while
//! one group's sequencer crashes mid-run.
//!
//! The run demonstrates the two halves of the transaction layer's contract:
//!
//! * **atomicity** — every committed transfer debits one group and credits
//!   the other; money is conserved across the whole deployment;
//! * **fail-over-proof confirmation** — the crashed group's legs settle
//!   through its conservative phase (replies with full weight `Π`), so the
//!   commits keep flowing without any cross-group coordination.
//!
//! ```text
//! cargo run -p oar-examples --example txn_transfer
//! ```

use oar::shard::ShardRouter;
use oar::sharded::ShardedConfig;
use oar::txn::TxnCluster;
use oar::OarConfig;
use oar_apps::kv::{KvCommand, KvMachine};
use oar_simnet::{SimDuration, SimTime};

/// Initial balance of every account, in cents.
const OPENING: i64 = 10_000;
/// Number of transfers the client commits.
const TRANSFERS: usize = 20;

fn put(key: &str, cents: i64) -> KvCommand {
    KvCommand::Put {
        key: key.into(),
        value: cents.to_string(),
    }
}

fn main() {
    // "checking:*" sorts below "m" (group 0), "savings:*" above it (group 1):
    // every transfer between the two accounts crosses the group boundary.
    let router = ShardRouter::range(vec!["m".to_string()]);
    let config = ShardedConfig {
        num_groups: 2,
        servers_per_group: 3,
        num_clients: 1,
        router,
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(20)),
        seed: 2001,
        ..ShardedConfig::default()
    };

    // The single writer precomputes the balance trajectory, so each transfer
    // is a deterministic two-key write transaction.
    let mut checking = OPENING;
    let mut savings = OPENING;
    let mut workload: Vec<Vec<KvCommand>> = vec![vec![
        put("checking:alice", checking),
        put("savings:alice", savings),
    ]];
    for i in 0..TRANSFERS {
        let amount = 100 + (i as i64 % 7) * 50; // 100..400 cents
        if i % 3 == 2 {
            savings -= amount;
            checking += amount;
        } else {
            checking -= amount;
            savings += amount;
        }
        workload.push(vec![
            put("checking:alice", checking),
            put("savings:alice", savings),
        ]);
    }
    let expected = (checking, savings);

    let mut cluster: TxnCluster<KvMachine> =
        TxnCluster::build(&config, KvMachine::new, move |_| workload.clone());

    // Crash the savings group's initial sequencer mid-run: transfers in
    // flight confirm through that group's conservative phase.
    let victim = cluster.groups[1][0];
    cluster
        .world
        .schedule_crash(victim, SimTime::from_millis(4));

    let done = cluster.run_to_completion(SimTime::from_secs(60));
    assert!(done, "every transfer must commit despite the crash");
    cluster
        .check_all()
        .expect("per-group propositions + atomicity");
    assert_eq!(cluster.total_misroutes(), 0);

    println!(
        "committed {} transactions ({} spanning both groups)",
        cluster.completed_txns().len(),
        cluster.multi_group_commits(),
    );
    let conservative = cluster
        .completed_txns()
        .iter()
        .flat_map(|t| t.parts.iter())
        .filter(|p| p.adopted_weight == 3)
        .count();
    println!("legs confirmed conservatively during fail-over: {conservative}");
    assert!(cluster.sum_group_stats(1, |st| st.phase2_entered) > 0);
    assert_eq!(cluster.sum_group_stats(0, |st| st.phase2_entered), 0);

    // Read the final balances straight out of each group's replicas: the
    // committed trajectory survived the crash, and money was conserved.
    let read = |group: usize, key: &str| -> i64 {
        cluster.groups[group]
            .iter()
            .filter(|&&s| !cluster.world.is_crashed(s))
            .filter_map(|&s| {
                cluster
                    .world
                    .process_ref::<oar::OarServer<KvMachine>>(s)
                    .state_machine()
                    .get(key)
                    .and_then(|v| v.parse().ok())
            })
            .next()
            .expect("an alive replica holds the account")
    };
    let final_checking = read(0, "checking:alice");
    let final_savings = read(1, "savings:alice");
    println!("final balances: checking {final_checking}  savings {final_savings}");
    assert_eq!((final_checking, final_savings), expected);
    assert_eq!(
        final_checking + final_savings,
        2 * OPENING,
        "money must be conserved"
    );
    println!("money conserved across both groups: {} cents", 2 * OPENING);
}
