//! A replicated key-value store whose replicas apply delivery batches on a
//! worker pool: commands with disjoint key sets execute concurrently, and a
//! serial twin run on the same seed proves the final state and every reply
//! are bit-identical — parallel apply is an execution strategy, never an
//! observable protocol change.
//!
//! ```text
//! cargo run -p oar-examples --example parallel_kv
//! ```

use oar::cluster::{Cluster, ClusterConfig};
use oar::{OarConfig, StateMachine};
use oar_apps::kv::{KvCommand, KvMachine};
use oar_simnet::SimTime;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 24;
const PIPELINE: usize = 8;
const WORKERS: usize = 4;

/// Mixed workload: each client mostly writes its own keys (disjoint across
/// clients, so concurrently delivered commands share a wave), with every
/// sixth write hitting a shared hot key (conflicting, so delivery order
/// still matters).
fn workload(client: usize) -> Vec<KvCommand> {
    (0..REQUESTS_PER_CLIENT)
        .map(|i| {
            if i % 6 == 5 {
                KvCommand::Put {
                    key: "hot".to_string(),
                    value: format!("c{client}#{i}"),
                }
            } else {
                KvCommand::Put {
                    key: format!("c{client}:k{}", i % 4),
                    value: format!("c{client}#{i}"),
                }
            }
        })
        .collect()
}

/// Builds and runs one 3-replica deployment; `workers` enables the
/// conflict-graph apply scheduler.
fn run(workers: Option<usize>, seed: u64) -> Cluster<KvMachine> {
    let mut builder = OarConfig::builder().max_batch(PIPELINE * CLIENTS);
    if let Some(w) = workers {
        builder = builder.with_parallel_apply(w);
    }
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: CLIENTS,
        oar: builder.build(),
        seed,
        client_pipeline: PIPELINE,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<KvMachine> = Cluster::build(&config, KvMachine::new, workload);
    assert!(
        cluster.run_to_completion(SimTime::from_secs(60)),
        "workload did not finish"
    );
    cluster.check_replica_consistency().expect("replicas agree");
    cluster
        .check_external_consistency()
        .expect("client replies are final");
    cluster
}

fn main() {
    let seed = 2001;
    let parallel = run(Some(WORKERS), seed);
    let serial = run(None, seed);

    // Bit-identical state: every replica digest of the parallel run equals
    // the serial twin's.
    for s in 0..3 {
        assert_eq!(
            parallel.server(s).state_machine().digest(),
            serial.server(s).state_machine().digest(),
            "replica {s} diverged from the serial twin"
        );
    }

    // Bit-identical replies: same responses at the same positions.
    let replies = |c: &Cluster<KvMachine>| {
        let mut r: Vec<_> = c
            .completed_requests()
            .iter()
            .map(|r| (r.id, r.response.clone(), r.position, r.epoch))
            .collect();
        r.sort_by_key(|&(id, ..)| id);
        r
    };
    assert_eq!(
        replies(&parallel),
        replies(&serial),
        "replies diverged from the serial twin"
    );

    println!(
        "completed {} requests on {WORKERS} workers; {} commands ran in multi-command waves",
        parallel.completed_requests().len(),
        parallel.total_parallel_wave_commands(),
    );
    println!(
        "replica digests and all replies are bit-identical to the serial twin \
         (digest 0x{:016x})",
        parallel.server(0).state_machine().digest()
    );
    println!(
        "hot key ended as {:?} in both runs",
        parallel.server(0).state_machine().get("hot")
    );
}
