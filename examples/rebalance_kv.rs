//! Online rebalancing of a sharded replicated key-value store: while two
//! OAR groups serve client traffic, one group's crashed replica is replaced
//! by a fresh one (a `Replace` fence settled through the conservative order,
//! the newcomer joining over the ordinary `CatchUp*` wires), and a hot key
//! range is migrated from group 0 to group 1 (a `Migrate` fence in *each*
//! group advancing the routing-boundary epoch, donors shipping the settled
//! range over `MigrateState` wires, stale traffic door-dropped and
//! redirected). No reply is lost or duplicated, and the migrated range ends
//! up bit-identical on every recipient replica.
//!
//! ```text
//! cargo run -p oar-examples --example rebalance_kv
//! ```

use oar::shard::{KeyRange, ShardRouter};
use oar::sharded::{ShardedCluster, ShardedConfig};
use oar::OarConfig;
use oar_apps::kv::{KvCommand, KvMachine};
use oar_simnet::{SimDuration, SimTime};

const CLIENTS: usize = 3;
const PER_CLIENT: usize = 40;

/// Every client hammers both sides of the `"m"` split point; the `a…` keys
/// are the range that migrates mid-run.
fn workload(client: usize) -> Vec<KvCommand> {
    (0..PER_CLIENT)
        .map(|i| {
            let key = if i % 2 == 0 {
                format!("a{:02}", (client * 7 + i) % 24)
            } else {
                format!("n{:02}", (client * 7 + i) % 24)
            };
            if i % 5 == 4 {
                KvCommand::Get { key }
            } else {
                KvCommand::Put {
                    key,
                    value: format!("c{client}#{i}"),
                }
            }
        })
        .collect()
}

fn main() {
    let config = ShardedConfig {
        num_groups: 2,
        servers_per_group: 3,
        num_clients: CLIENTS,
        router: ShardRouter::range(vec!["m".into()]),
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(20)),
        seed: 2001,
        ..ShardedConfig::default()
    };
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, workload);

    // A replica of group 0 crashes under traffic…
    let victim = cluster.groups[0][2];
    cluster
        .world
        .schedule_crash(victim, SimTime::from_millis(2));
    cluster.world.run_until(SimTime::from_millis(4));

    // …and is replaced online: the fence settles conservatively in group 0,
    // the replacement catches up by snapshot + delta, and the group is back
    // at full fault budget — group 1 never notices.
    let replacement =
        cluster.inject_replace(0, 2, KvCommand::Get { key: "zz".into() }, KvMachine::new);
    println!("replacing crashed {victim} by {replacement} in group 0");

    // Meanwhile the keys `a00..a12` move from group 0 to group 1. Clients
    // still routing by the old boundary get door-dropped and redirected.
    let range = KeyRange::new("a00", "a12");
    cluster.world.run_until(SimTime::from_millis(6));
    let record = cluster.inject_migrate(range.clone(), 0, 1, KvCommand::Get { key: "zz".into() });
    println!(
        "migrating [a00, a12) from g0 to g1 (route epoch {})",
        record.route_epoch
    );

    let done = cluster.run_to_completion(SimTime::from_secs(60));
    assert!(done, "workload did not finish");
    // Let the replacement's catch-up and the migration transfers settle.
    let settle = cluster.world.now() + SimDuration::from_millis(50);
    cluster.world.run_until(settle);

    // Zero lost or duplicated replies: every client adopted exactly one
    // reply per request it issued.
    let mut total = 0usize;
    for c in 0..CLIENTS {
        let completed = cluster.client(c).completed();
        let mut ids: Vec<_> = completed.iter().map(|d| d.request.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), completed.len(), "client {c} adopted a duplicate");
        assert_eq!(completed.len(), PER_CLIENT, "client {c} lost a reply");
        total += completed.len();
    }

    cluster
        .check_per_group_consistency()
        .expect("every group agrees internally");
    cluster
        .check_external_consistency()
        .expect("client replies are final");
    assert_eq!(cluster.total_misroutes(), 0, "the router is exact");
    assert!(
        !cluster.server(0, 2).is_recovering(),
        "the replacement finished catch-up"
    );

    // Digest equality: the migrated range is bit-identical on every live
    // recipient replica (and the donors kept nothing of it).
    let digests: Vec<u64> = cluster
        .range_digests(1, &range)
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(digests.len(), 3, "all recipient replicas answer");
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "recipients disagree on the migrated range"
    );

    println!("completed {total} requests, zero lost, zero duplicated");
    println!(
        "fences applied {} | catch-up replies {} | redirected {} | MigrateState wires {}",
        cluster.total_reconfigs_applied(),
        cluster.total_catch_up_replies(),
        cluster.total_redirected(),
        cluster.total_migrate_state_wires(),
    );
    println!(
        "migrated-range digest agreed across group 1: {:#018x}",
        digests[0]
    );
}
