//! Quickstart: replicate a counter over three OAR servers and issue a handful
//! of requests from one client.
//!
//! ```text
//! cargo run -p oar-examples --example quickstart
//! ```

use oar::cluster::{Cluster, ClusterConfig};
use oar::state_machine::{CounterCommand, CounterMachine};
use oar_simnet::SimTime;

fn main() {
    // Three replicas, one client, a simulated switched LAN, deterministic seed.
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 1,
        seed: 42,
        ..ClusterConfig::default()
    };

    // The client increments the replicated counter ten times.
    let workload: Vec<CounterCommand> = (1..=10).map(CounterCommand::Add).collect();
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |_client| workload.clone());

    // Run the simulation until the workload completes.
    let done = cluster.run_to_completion(SimTime::from_secs(10));
    assert!(done, "workload did not finish");

    println!("completed requests:");
    for request in cluster.client(0).completed() {
        println!(
            "  request {:>6}  response={:<4}  position={}  epoch={}  weight={}  latency={}",
            request.id.to_string(),
            request.response,
            request.position,
            request.epoch,
            request.adopted_weight,
            request.latency(),
        );
    }

    // Every replica holds the same state.
    for (i, &server) in cluster.servers.clone().iter().enumerate() {
        let server = cluster
            .world
            .process_ref::<oar::OarServer<CounterMachine>>(server);
        println!(
            "server {i}: counter={} epoch={} opt-delivered={} phase2-entries={}",
            server.state_machine().value(),
            server.epoch(),
            server.stats().opt_delivered,
            server.stats().phase2_entered,
        );
    }

    cluster.check_replica_consistency().expect("replicas agree");
    cluster
        .check_external_consistency()
        .expect("client replies are final");
    println!("latency summary (ms): {}", cluster.latencies().summary());
    println!(
        "OK: failure-free run, {} phase-2 entries, {} undeliveries",
        cluster.total_phase2_entries(),
        cluster.total_undeliveries()
    );
}
