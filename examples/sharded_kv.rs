//! A sharded replicated key-value store: the key space hash-partitioned over
//! four independent OAR groups (each its own sequencer, consensus and
//! failure detector), clients routing every command to the owning group —
//! with one group's sequencer crashing mid-run while the other three keep
//! serving undisturbed.
//!
//! ```text
//! cargo run -p oar-examples --example sharded_kv
//! ```

use oar::shard::ShardRouter;
use oar::sharded::{ShardedCluster, ShardedConfig};
use oar::OarConfig;
use oar_apps::kv::{KvCommand, KvMachine};
use oar_simnet::{SimDuration, SimTime};

fn workload(client: usize) -> Vec<KvCommand> {
    let mut commands = Vec::new();
    for i in 0..25 {
        let key = format!("user:{}", (client * 7 + i) % 32);
        if i % 3 == 2 {
            commands.push(KvCommand::Get { key });
        } else {
            commands.push(KvCommand::Put {
                key,
                value: format!("c{client}#{i}"),
            });
        }
    }
    commands
}

fn main() {
    const GROUPS: usize = 4;
    let config = ShardedConfig {
        num_groups: GROUPS,
        servers_per_group: 3,
        num_clients: 4,
        router: ShardRouter::hash(GROUPS),
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(20)),
        seed: 2001,
        ..ShardedConfig::default()
    };
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, workload);

    // Crash group 2's initial sequencer mid-run: only that group fails over
    // (through its own consensus); groups 0, 1 and 3 never notice.
    let victim = cluster.groups[2][0];
    cluster
        .world
        .schedule_crash(victim, SimTime::from_millis(4));

    let done = cluster.run_to_completion(SimTime::from_secs(60));
    assert!(done, "workload did not finish");
    cluster
        .check_per_group_consistency()
        .expect("every group agrees internally");
    cluster
        .check_external_consistency()
        .expect("client replies are final");
    assert_eq!(cluster.total_misroutes(), 0, "the router is exact");

    println!("completed {} requests:", cluster.completed_requests().len());
    println!(
        "{:<6} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "group", "settled", "order-msgs", "reply-wires", "wire-sent", "phase2"
    );
    for g in 0..GROUPS {
        println!(
            "g{:<5} {:>8} {:>10} {:>12} {:>12} {:>10}",
            g,
            cluster.sum_group_stats(g, |st| st.opt_delivered + st.a_delivered),
            cluster.sum_group_stats(g, |st| st.order_messages_sent),
            cluster.sum_group_stats(g, |st| st.reply_messages_sent),
            cluster.group_net_stats(g).sent,
            cluster.sum_group_stats(g, |st| st.phase2_entered),
        );
    }
    let failed_over: Vec<usize> = (0..GROUPS)
        .filter(|&g| cluster.sum_group_stats(g, |st| st.phase2_entered) > 0)
        .collect();
    println!("groups that ran phase 2: {failed_over:?} (only the one whose sequencer crashed)");
    assert_eq!(failed_over, vec![2]);
}
