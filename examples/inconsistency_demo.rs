//! Side-by-side demonstration of the paper's motivating anomaly: the same
//! adversarial schedule (sequencer replies, is partitioned away and crashes,
//! the new sequencer picks a different order) is run against
//!
//! 1. the Isis/Amoeba-style fixed-sequencer Atomic Broadcast, where the client
//!    *adopts* a reply that the final order contradicts (Figure 1b), and
//! 2. OAR, where the weighted-quorum rule prevents the client from adopting
//!    the sequencer-only reply, so external consistency is preserved.
//!
//! ```text
//! cargo run -p oar-examples --example inconsistency_demo
//! ```

use oar_bench::figures;

fn main() {
    let seed = 13;

    let unsafe_run = figures::figure_1b(seed);
    println!("--- fixed-sequencer baseline (paper Figure 1b) ---");
    println!(
        "requests completed: {}   client-visible inconsistencies: {}",
        unsafe_run.completed_requests, unsafe_run.client_inconsistencies
    );
    println!(
        "=> {}",
        if unsafe_run.client_inconsistencies > 0 {
            "the client adopted a reply that the final order later contradicted"
        } else {
            "no inconsistency was produced in this run (try another seed)"
        }
    );

    let safe_run = figures::figure_1b_oar(seed);
    println!();
    println!("--- OAR on the same schedule ---");
    println!(
        "requests completed: {}   undeliveries: {}   phase-2 entries: {}",
        safe_run.completed_requests, safe_run.undeliveries, safe_run.phase2_entries
    );
    println!(
        "=> {}",
        if safe_run.consistent {
            "every adopted reply matches the final replicated state (external consistency)"
        } else {
            "UNEXPECTED: OAR produced an inconsistency"
        }
    );
    assert!(safe_run.consistent, "OAR must keep clients consistent");
}
