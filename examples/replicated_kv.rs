//! A replicated key-value store served by five OAR replicas under a mixed
//! read/write workload from several clients, with one replica crash mid-run.
//!
//! ```text
//! cargo run -p oar-examples --example replicated_kv
//! ```

use oar::cluster::{Cluster, ClusterConfig};
use oar::OarConfig;
use oar_apps::kv::{KvCommand, KvMachine, KvResponse};
use oar_simnet::{ProcessId, SimDuration, SimTime};

fn workload(client: usize) -> Vec<KvCommand> {
    let mut commands = Vec::new();
    for i in 0..20 {
        let key = format!("user:{}", (client * 7 + i) % 10);
        if i % 3 == 2 {
            commands.push(KvCommand::Get { key });
        } else {
            commands.push(KvCommand::Put {
                key,
                value: format!("c{client}#{i}"),
            });
        }
    }
    commands.push(KvCommand::CompareAndSwap {
        key: format!("user:{client}"),
        expected: None,
        new: format!("created-by-{client}"),
    });
    commands
}

fn main() {
    let config = ClusterConfig {
        num_servers: 5,
        num_clients: 4,
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(20)),
        seed: 2001,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<KvMachine> = Cluster::build(&config, KvMachine::new, workload);

    // Crash one non-sequencer replica mid-run: active replication keeps going
    // without any fail-over because the four remaining replicas still answer
    // with majority weight.
    cluster
        .world
        .schedule_crash(ProcessId::new(3), SimTime::from_millis(4));

    let done = cluster.run_to_completion(SimTime::from_secs(60));
    assert!(done, "workload did not finish");
    cluster.check_replica_consistency().expect("replicas agree");
    cluster
        .check_external_consistency()
        .expect("client replies are final");

    let total: usize = cluster.completed_requests().len();
    let swaps = cluster
        .completed_requests()
        .iter()
        .filter(|r| matches!(r.response, KvResponse::Swapped(true)))
        .count();
    println!("completed {total} requests ({swaps} successful compare-and-swaps)");
    println!("latency summary (ms): {}", cluster.latencies().summary());

    let store = cluster.server(0).state_machine();
    println!("replica 0 now stores {} keys; sample:", store.len());
    for c in 0..config.num_clients {
        let key = format!("user:{c}");
        println!("  {key} = {:?}", store.get(&key));
    }
    println!(
        "phase-2 entries: {}   opt-undeliveries: {}",
        cluster.total_phase2_entries(),
        cluster.total_undeliveries()
    );
}
