//! A replicated bank that survives the crash of its sequencer: the epoch
//! switches to the conservative phase, a new sequencer takes over, and no
//! money is lost or duplicated — the transactional-undo integration suggested
//! by the paper's conclusion.
//!
//! ```text
//! cargo run -p oar-examples --example bank_failover
//! ```

use oar::cluster::{Cluster, ClusterConfig};
use oar::OarConfig;
use oar_apps::bank::{BankCommand, BankMachine};
use oar_simnet::{ProcessId, SimDuration, SimTime};

fn workload(client: usize) -> Vec<BankCommand> {
    // Each client shuffles money between its two accounts and the shared
    // account 0; total funds must be conserved whatever the interleaving.
    let a = (client * 2 + 1) as u32;
    let b = (client * 2 + 2) as u32;
    let mut commands = Vec::new();
    for i in 0..15 {
        match i % 3 {
            0 => commands.push(BankCommand::Transfer {
                from: a,
                to: b,
                amount: 5,
            }),
            1 => commands.push(BankCommand::Transfer {
                from: b,
                to: 0,
                amount: 3,
            }),
            _ => commands.push(BankCommand::Deposit {
                account: a,
                amount: 2,
            }),
        }
    }
    commands.push(BankCommand::Balance { account: a });
    commands
}

fn main() {
    let accounts = 7u32;
    let initial = 100;
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 3,
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(25)),
        seed: 7,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<BankMachine> = Cluster::build(
        &config,
        || BankMachine::with_accounts(accounts, initial),
        workload,
    );

    // Crash the current sequencer (server 0) while the workload is in flight.
    cluster
        .world
        .schedule_crash(ProcessId::new(0), SimTime::from_millis(3));

    let done = cluster.run_to_completion(SimTime::from_secs(60));
    assert!(done, "workload did not finish after the sequencer crash");
    cluster.check_replica_consistency().expect("replicas agree");
    cluster
        .check_external_consistency()
        .expect("client replies are final");

    let deposited_per_client = 5 * 2; // five Deposit commands of 2 per client
    let expected_total =
        initial * accounts as i64 + deposited_per_client * config.num_clients as i64;
    for (i, &server) in cluster.servers.clone().iter().enumerate() {
        if cluster.world.is_crashed(server) {
            println!("server {i}: crashed (was the sequencer)");
            continue;
        }
        let bank = cluster
            .world
            .process_ref::<oar::OarServer<BankMachine>>(server)
            .state_machine();
        println!(
            "server {i}: total funds = {} (expected {expected_total}), accounts = {}",
            bank.total_funds(),
            bank.num_accounts()
        );
        assert_eq!(
            bank.total_funds(),
            expected_total,
            "money must be conserved"
        );
    }
    println!(
        "completed {} requests; phase-2 entries: {}; latency: {}",
        cluster.completed_requests().len(),
        cluster.total_phase2_entries(),
        cluster.latencies().summary()
    );
    println!("OK: sequencer crash tolerated, funds conserved, clients consistent");
}
