//! End-to-end checks of the sharded deployment layer: the paper's
//! propositions hold *inside every group* — under faults injected into
//! individual groups — while groups stay isolated from each other's
//! failures, no request is ever misrouted, and the duplicate-suppression
//! memory stays window-bounded.

use oar::shard::ShardRouter;
use oar::sharded::{ShardedCluster, ShardedConfig};
use oar::{OarConfig, OarServer};
use oar_apps::kv::{KvCommand, KvMachine, KvResponse};
use oar_simnet::{NetConfig, SimDuration, SimTime};

fn kv_workload(client: usize, n: usize) -> Vec<KvCommand> {
    (0..n)
        .map(|i| {
            let key = format!("k{:02}", (client * 11 + i * 3) % 24);
            if i % 5 == 4 {
                KvCommand::Get { key }
            } else {
                KvCommand::Put {
                    key,
                    value: format!("c{client}i{i}"),
                }
            }
        })
        .collect()
}

fn sharded_config(groups: usize, seed: u64) -> ShardedConfig {
    ShardedConfig {
        num_groups: groups,
        servers_per_group: 3,
        num_clients: 3,
        router: ShardRouter::hash(groups),
        net: NetConfig::lan(),
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(25)),
        seed,
        think_time: SimDuration::ZERO,
        client_pipeline: 1,
        adaptive_pipeline: false,
    }
}

fn run_checks(cluster: &ShardedCluster<KvMachine>, label: &str) {
    cluster
        .check_per_group_consistency()
        .unwrap_or_else(|e| panic!("[{label}] per-group consistency: {e}"));
    cluster
        .check_external_consistency()
        .unwrap_or_else(|e| panic!("[{label}] external consistency: {e}"));
    assert_eq!(
        cluster.total_misroutes(),
        0,
        "[{label}] misroutes must be 0"
    );
}

#[test]
fn failure_free_sharded_runs_over_many_seeds() {
    for seed in 0..6u64 {
        let groups = 2 + (seed % 3) as usize; // 2, 3, 4
        let config = sharded_config(groups, seed);
        let mut cluster: ShardedCluster<KvMachine> =
            ShardedCluster::build(&config, KvMachine::new, |c| kv_workload(c, 10));
        assert!(
            cluster.run_to_completion(SimTime::from_secs(30)),
            "seed {seed}: workload did not finish"
        );
        assert_eq!(cluster.completed_requests().len(), 30);
        run_checks(&cluster, &format!("seed {seed}"));
    }
}

/// Crash one group's sequencer: that group fails over through its own
/// consensus while every other group keeps delivering optimistically,
/// untouched — the failure detectors are per group.
#[test]
fn crashing_one_groups_sequencer_leaves_the_rest_delivering() {
    let config = sharded_config(3, 42);
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, |c| kv_workload(c, 12));
    let victim = cluster.groups[1][0]; // group 1's epoch-0 sequencer
    cluster
        .world
        .schedule_crash(victim, SimTime::from_millis(4));
    assert!(
        cluster.run_to_completion(SimTime::from_secs(60)),
        "every group (including the failed-over one) must finish"
    );
    assert_eq!(cluster.completed_requests().len(), 36);
    run_checks(&cluster, "one-group crash");
    assert!(
        cluster.sum_group_stats(1, |st| st.phase2_entered) > 0,
        "the crashed group must have run phase 2"
    );
    for g in [0usize, 2] {
        assert_eq!(
            cluster.sum_group_stats(g, |st| st.phase2_entered),
            0,
            "group {g} must stay in the optimistic phase"
        );
        assert_eq!(
            cluster.sum_group_stats(g, |st| st.opt_undelivered),
            0,
            "group {g} must not undo anything"
        );
    }
}

/// Crashing a sequencer in *every* group still completes: each group's
/// fail-over is independent, so they recover in parallel.
#[test]
fn parallel_failovers_across_all_groups() {
    let config = sharded_config(2, 7);
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, |c| kv_workload(c, 10));
    for g in 0..2 {
        let victim = cluster.groups[g][0];
        cluster
            .world
            .schedule_crash(victim, SimTime::from_millis(4 + g as u64));
    }
    assert!(
        cluster.run_to_completion(SimTime::from_secs(60)),
        "both groups must fail over and finish"
    );
    run_checks(&cluster, "parallel failovers");
    for g in 0..2 {
        assert!(
            cluster.sum_group_stats(g, |st| st.phase2_entered) > 0,
            "group {g} must have failed over"
        );
    }
}

/// A range-partitioned deployment preserves the same guarantees, and routes
/// contiguous key intervals to the same group.
#[test]
fn range_partitioned_deployment_is_consistent() {
    let keys: Vec<String> = (0..24).map(|i| format!("k{i:02}")).collect();
    let router = ShardRouter::range_from_keys(keys, 3);
    let config = ShardedConfig {
        num_groups: 3,
        router: router.clone(),
        ..sharded_config(3, 11)
    };
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, |c| kv_workload(c, 10));
    assert!(cluster.run_to_completion(SimTime::from_secs(30)));
    run_checks(&cluster, "range");
    // Every completion landed in the group the router owns the key to.
    for done in cluster.completed_requests() {
        let settled = cluster.groups[done.group.index()].iter().any(|&s| {
            cluster
                .world
                .process_ref::<OarServer<KvMachine>>(s)
                .committed_sequence()
                .contains(&done.request.id)
        });
        assert!(
            settled,
            "{} not settled by its owning group",
            done.request.id
        );
    }
}

/// Per-key ordering: all commands on one key are serialised by the owning
/// group. For a closed-loop (pipeline-1) client this is observable from the
/// outside: successive requests it routes to the same group must adopt
/// strictly increasing positions in that group's order.
#[test]
fn per_key_reads_see_the_owning_groups_order() {
    let config = sharded_config(2, 23);
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, |c| kv_workload(c, 15));
    assert!(cluster.run_to_completion(SimTime::from_secs(30)));
    run_checks(&cluster, "per-key order");
    // Within each client, completions for the same key + group arrive with
    // strictly increasing positions (the group's order is per-key order).
    for c in 0..cluster.clients.len() {
        let client = cluster.client(c);
        let mut last_pos: std::collections::HashMap<usize, u64> = Default::default();
        let mut by_index: Vec<_> = client.completed().to_vec();
        by_index.sort_by_key(|d| d.request.index);
        for done in by_index {
            let g = done.group.index();
            let prev = last_pos.insert(g, done.request.position);
            if let Some(prev) = prev {
                assert!(
                    done.request.position > prev,
                    "client {c}: positions within group {g} must increase \
                     with submission order for a pipeline-1 client"
                );
            }
        }
    }
}

/// The reliable-multicast duplicate-suppression memory stays bounded by the
/// epoch watermark under a multi-epoch sharded run (the ROADMAP leftover,
/// observed at the deployment level).
#[test]
fn seen_sets_stay_window_bounded_under_epoch_cuts() {
    let config = ShardedConfig {
        oar: OarConfig {
            epoch_cut_after: Some(16),
            ..OarConfig::with_batching(4)
        },
        client_pipeline: 4,
        ..sharded_config(2, 5)
    };
    let requests_per_client = 120;
    let mut cluster: ShardedCluster<KvMachine> =
        ShardedCluster::build(&config, KvMachine::new, |c| {
            kv_workload(c, requests_per_client)
        });
    assert!(cluster.run_to_completion(SimTime::from_secs(120)));
    run_checks(&cluster, "seen bound");
    // 3 clients × 120 requests split over 2 groups; without aging, `seen`
    // would reach each group's full share (~180). The watermark keeps it
    // near the epoch window (16 deliveries + in-flight pipeline).
    let bound = 4 * (16 + 3 * 4) + 64;
    assert!(
        cluster.peak_seen() <= bound as u64,
        "peak seen {} exceeds the watermark window bound {bound}",
        cluster.peak_seen()
    );
    // Responses still correct: a Get that completed adopted a real value.
    for done in cluster.completed_requests() {
        match &done.request.response {
            KvResponse::Value(_)
            | KvResponse::Previous(_)
            | KvResponse::Swapped(_)
            | KvResponse::Multi(_)
            | KvResponse::Installed(_) => {}
        }
    }
}
