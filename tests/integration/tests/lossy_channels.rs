//! Integration of the reliable-channel layer with the simulator: the paper's
//! system model assumes reliable FIFO channels; `oar-channels` provides them
//! over a lossy, reordering network. This test wires `FifoLink` endpoints into
//! simulator processes and checks exactly-once, in-order delivery despite
//! heavy loss.

use oar_channels::{FifoLink, FifoWire};
use oar_simnet::{
    NetConfig, Process, ProcessId, Runtime, SimDuration, SimTime, Timer, TimerTag, World,
};

const TICK: TimerTag = TimerTag::Tick;

#[derive(Debug, Clone, PartialEq)]
enum Wire {
    Fifo(FifoWire<u32>),
}

struct Endpoint {
    link: FifoLink<u32>,
    peer: ProcessId,
    to_send: Vec<u32>,
    received: Vec<u32>,
}

impl Endpoint {
    fn new(peer: ProcessId, to_send: Vec<u32>) -> Self {
        Endpoint {
            link: FifoLink::new(),
            peer,
            to_send,
            received: Vec::new(),
        }
    }
}

impl Process<Wire> for Endpoint {
    fn on_start(&mut self, ctx: &mut dyn Runtime<Wire>) {
        for v in self.to_send.clone() {
            let out = self.link.send(self.peer, v);
            ctx.send(out.to, Wire::Fifo(out.wire));
        }
        ctx.set_timer(SimDuration::from_millis(5), TICK);
    }

    fn on_message(&mut self, ctx: &mut dyn Runtime<Wire>, from: ProcessId, msg: Wire) {
        let Wire::Fifo(wire) = msg;
        let (delivered, acks) = self.link.on_wire(from, wire);
        self.received.extend(delivered);
        for ack in acks {
            ctx.send(ack.to, Wire::Fifo(ack.wire));
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<Wire>, timer: Timer) {
        if timer.tag != TICK {
            return;
        }
        for retry in self.link.on_tick() {
            ctx.send(retry.to, Wire::Fifo(retry.wire));
        }
        if self.link.unacked_total() > 0 {
            ctx.set_timer(SimDuration::from_millis(5), TICK);
        }
    }
}

#[test]
fn reliable_fifo_delivery_over_a_very_lossy_network() {
    for seed in 0..5u64 {
        // 30% loss, no FIFO guarantee, independent latencies: the raw network
        // is allowed to drop and reorder aggressively.
        let mut net = NetConfig::lossy_lan(0.3);
        net.fifo_links = false;
        let mut world: World<Wire> = World::new(net, seed);
        let payload: Vec<u32> = (0..200).collect();
        let a = world.add_process(Endpoint::new(ProcessId::new(1), payload.clone()));
        let b = world.add_process(Endpoint::new(ProcessId::new(0), Vec::new()));
        world.run_until_quiescent(SimTime::from_secs(30));
        let receiver = world.process_ref::<Endpoint>(b);
        assert_eq!(receiver.received, payload, "seed {seed}");
        let sender = world.process_ref::<Endpoint>(a);
        assert_eq!(
            sender.link.unacked_total(),
            0,
            "seed {seed}: everything acknowledged"
        );
        assert!(
            world.stats().dropped > 0,
            "seed {seed}: the network did drop messages"
        );
    }
}

#[test]
fn bidirectional_traffic_with_duplication() {
    let mut net = NetConfig::lossy_lan(0.15);
    net.default_link.duplicate_probability = 0.1;
    net.fifo_links = false;
    let mut world: World<Wire> = World::new(net, 42);
    let forward: Vec<u32> = (0..100).collect();
    let backward: Vec<u32> = (1000..1080).collect();
    let a = world.add_process(Endpoint::new(ProcessId::new(1), forward.clone()));
    let b = world.add_process(Endpoint::new(ProcessId::new(0), backward.clone()));
    world.run_until_quiescent(SimTime::from_secs(30));
    assert_eq!(world.process_ref::<Endpoint>(b).received, forward);
    assert_eq!(world.process_ref::<Endpoint>(a).received, backward);
}
