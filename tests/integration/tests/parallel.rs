//! End-to-end checks of the parallel apply stage: a deployment running the
//! conflict-graph wave scheduler must be observably indistinguishable from a
//! serial one — same replica digests, same replies, same positions — across
//! seeds, worker counts and workload shapes, with the paper's propositions
//! (total order, at-most-once, external consistency) intact on every run.

use oar::cluster::{Cluster, ClusterConfig};
use oar::server::OarServer;
use oar::{OarConfig, StateMachine};
use oar_apps::kv::{KvCommand, KvMachine};
use oar_simnet::SimTime;

const CLIENTS: usize = 3;
const PIPELINE: usize = 8;

/// Write-heavy workload, keys mostly private to each client (disjoint →
/// shared waves) with a periodic shared hot key (conflicting → ordered).
fn workload(client: usize, requests: usize) -> Vec<KvCommand> {
    (0..requests)
        .map(|i| match i % 7 {
            6 => KvCommand::Put {
                key: "hot".to_string(),
                value: format!("c{client}#{i}"),
            },
            5 => KvCommand::CompareAndSwap {
                key: format!("c{client}:k0"),
                expected: None,
                new: format!("cas-c{client}#{i}"),
            },
            _ => KvCommand::Put {
                key: format!("c{client}:k{}", i % 3),
                value: format!("c{client}#{i}"),
            },
        })
        .collect()
}

fn run(workers: Option<usize>, seed: u64, requests: usize) -> Cluster<KvMachine> {
    let mut builder = OarConfig::builder().max_batch(PIPELINE * CLIENTS);
    if let Some(w) = workers {
        builder = builder.with_parallel_apply(w);
    }
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: CLIENTS,
        oar: builder.build(),
        seed,
        client_pipeline: PIPELINE,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<KvMachine> =
        Cluster::build(&config, KvMachine::new, |c| workload(c, requests));
    assert!(
        cluster.run_to_completion(SimTime::from_secs(120)),
        "run (workers={workers:?}, seed={seed}) did not finish"
    );
    cluster.check_replica_consistency().unwrap();
    cluster.check_external_consistency().unwrap();
    cluster
}

fn digests(cluster: &Cluster<KvMachine>) -> Vec<u64> {
    cluster
        .servers
        .iter()
        .map(|&s| {
            cluster
                .world
                .process_ref::<OarServer<KvMachine>>(s)
                .state_machine()
                .digest()
        })
        .collect()
}

fn replies(cluster: &Cluster<KvMachine>) -> Vec<(u64, String, u64, u64)> {
    let mut out: Vec<_> = cluster
        .completed_requests()
        .iter()
        .map(|r| (r.id.seq, format!("{:?}", r.response), r.position, r.epoch))
        .collect();
    out.sort();
    out
}

/// Across several seeds, a 4-worker deployment replays the serial one
/// exactly: digests, replies and positions are all bit-identical.
#[test]
fn parallel_apply_is_observably_identical_to_serial_across_seeds() {
    for seed in [3, 11, 42] {
        let parallel = run(Some(4), seed, 21);
        let serial = run(None, seed, 21);
        assert_eq!(
            digests(&parallel),
            digests(&serial),
            "digests diverged on seed {seed}"
        );
        assert_eq!(
            replies(&parallel),
            replies(&serial),
            "replies diverged on seed {seed}"
        );
        assert!(
            parallel.total_parallel_wave_commands() > 0,
            "seed {seed} never exercised a multi-command wave"
        );
    }
}

/// Worker count is a pure execution knob: 1, 2 and 8 workers all land on the
/// same digests as the serial deployment.
#[test]
fn worker_count_never_changes_the_outcome() {
    let reference = digests(&run(None, 23, 14));
    for workers in [1, 2, 8] {
        assert_eq!(
            digests(&run(Some(workers), 23, 14)),
            reference,
            "{workers} workers diverged"
        );
    }
}

/// The apply-time stats channel records work without perturbing the
/// simulation: the parallel run spends measurable host time in apply and its
/// wave histogram sees multi-command waves.
#[test]
fn apply_stats_record_wave_execution() {
    let parallel = run(Some(4), 5, 21);
    assert!(parallel.total_apply_ns() > 0);
    assert!(parallel.total_parallel_wave_commands() > 0);
    let serial = run(None, 5, 21);
    // The serial twin records apply time too, but only singleton waves.
    assert!(serial.total_apply_ns() > 0);
    assert_eq!(serial.total_parallel_wave_commands(), 0);
}
