//! Membership reconfiguration, online shard rebalancing and Merkle
//! anti-entropy, end to end:
//!
//! * a crashed replica is **replaced** through a `Reconfig::Replace` fence
//!   settled in the conservative order; the replacement joins over the
//!   ordinary `CatchUp*` wires, and the group then tolerates a *further*
//!   crash — the fault budget is restored;
//! * a key range **migrates** between groups mid-traffic with zero lost or
//!   duplicated replies: the fence is ordered in both groups independently,
//!   donors ship the settled range over bounded `MigrateState` wires, stale
//!   traffic is door-redirected and clients re-route under the original
//!   request ids;
//! * injected settled-state divergence is **localised and healed** by the
//!   Merkle anti-entropy loop in O(log n) digest wires.

use oar::cluster::{Cluster, ClusterConfig};
use oar::shard::{KeyRange, ShardRouter};
use oar::sharded::{ShardedCluster, ShardedConfig};
use oar::state_machine::{CounterCommand, CounterMachine};
use oar::OarConfig;
use oar_apps::kv::{KvCommand, KvMachine};
use oar_simnet::{NetConfig, SimDuration, SimTime};

fn counter_workload(client: usize, n: usize) -> Vec<CounterCommand> {
    (0..n)
        .map(|i| CounterCommand::Add((client * 31 + i) as i64 % 11 + 1))
        .collect()
}

fn run_cluster_checks<S: oar::StateMachine>(cluster: &Cluster<S>, label: &str) {
    cluster
        .check_replica_consistency()
        .unwrap_or_else(|e| panic!("[{label}] replica consistency: {e}"));
    cluster
        .check_external_consistency()
        .unwrap_or_else(|e| panic!("[{label}] external consistency: {e}"));
}

/// The tentpole, part 1: replace a crashed replica online, then crash a
/// *second* replica — the replacement restored the fault budget, so the
/// group keeps settling new requests.
#[test]
fn replaced_replica_restores_the_fault_budget() {
    for seed in 0..4u64 {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::constant(SimDuration::from_micros(150)),
            oar: OarConfig {
                epoch_cut_after: Some(4),
                snapshot_every: Some(2),
                ..OarConfig::with_fd_timeout(SimDuration::from_millis(20))
            },
            client_pipeline: 4,
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 150)
            });
        let old = cluster.servers[2];
        cluster.world.schedule_crash(old, SimTime::from_millis(2));
        cluster.world.run_until(SimTime::from_millis(4));
        let new = cluster.inject_replace(2, CounterCommand::Add(0), CounterMachine::default);

        // Wait for the fence to settle and the replacement to catch up.
        let mut t = cluster.world.now();
        loop {
            t += SimDuration::from_millis(5);
            cluster.world.run_until(t);
            let fenced =
                cluster.server(0).members() == [cluster.servers[0], cluster.servers[1], new];
            if fenced && !cluster.server(2).is_recovering() {
                break;
            }
            assert!(
                t < SimTime::from_secs(5),
                "seed {seed}: replace fence did not settle / replacement did not catch up"
            );
        }
        assert!(
            !cluster.all_clients_done(),
            "seed {seed}: workload drained before the further crash — test vacuous"
        );
        // The fence removed `old` from the suspect sets (satellite a).
        assert!(
            !cluster.server(0).is_suspecting(old),
            "seed {seed}: fenced-out replica still suspected"
        );

        // The further crash the replacement's fault budget must absorb.
        cluster.world.crash_now(cluster.servers[1]);
        assert!(
            cluster.run_to_completion(SimTime::from_secs(120)),
            "seed {seed}: workload did not finish after the post-replace crash"
        );
        assert_eq!(cluster.completed_requests().len(), 300, "seed {seed}");
        assert!(
            cluster.total_reconfigs_applied() >= 2,
            "seed {seed}: both survivors must apply the fence"
        );
        // Membership converged on the post-replacement roster everywhere
        // alive.
        for i in [0usize, 2] {
            assert_eq!(
                cluster.server(i).members(),
                [cluster.servers[0], cluster.servers[1], new],
                "seed {seed}: server {i} roster"
            );
        }
        run_cluster_checks(&cluster, &format!("replace seed {seed}"));
    }
}

fn split_workload(client: usize, n: usize) -> Vec<KvCommand> {
    (0..n)
        .map(|i| {
            // Half the keys below the "m" boundary (group 0), half above
            // (group 1); the migrated range ["a00","a12") stays hot
            // throughout.
            let key = if i % 2 == 0 {
                format!("a{:02}", (client * 7 + i) % 24)
            } else {
                format!("n{:02}", (client * 7 + i) % 24)
            };
            if i % 5 == 4 {
                KvCommand::Get { key }
            } else {
                KvCommand::Put {
                    key,
                    value: format!("c{client}i{i}"),
                }
            }
        })
        .collect()
}

/// The tentpole, part 2: migrate a key range between groups while clients
/// hammer it. No reply is lost or duplicated, the transfer stays within the
/// s² wire bound, stale traffic is counted and redirected, and the migrated
/// range's digests agree across the recipient group while the donor's copy
/// is gone.
#[test]
fn online_migration_loses_and_duplicates_nothing() {
    for seed in 0..4u64 {
        let per_client = 120usize;
        let config = ShardedConfig {
            num_groups: 2,
            servers_per_group: 3,
            num_clients: 3,
            router: ShardRouter::range(vec!["m".into()]),
            net: NetConfig::lan(),
            oar: OarConfig::with_fd_timeout(SimDuration::from_millis(25)),
            seed,
            think_time: SimDuration::ZERO,
            client_pipeline: 2,
            adaptive_pipeline: false,
        };
        let mut cluster: ShardedCluster<KvMachine> =
            ShardedCluster::build(&config, KvMachine::new, |c| split_workload(c, per_client));
        cluster.world.run_until(SimTime::from_millis(2));
        assert!(
            !cluster.all_clients_done(),
            "seed {seed}: workload drained before the migration — test vacuous"
        );
        let range = KeyRange::new("a00", "a12");
        let record =
            cluster.inject_migrate(range.clone(), 0, 1, KvCommand::Get { key: "zz".into() });
        assert_eq!(record.route_epoch, 1);
        assert!(
            cluster.run_to_completion(SimTime::from_secs(60)),
            "seed {seed}: workload did not finish across the migration"
        );
        // Settle in-flight anti-entropy/redirect traffic before checking.
        let settle = cluster.world.now() + SimDuration::from_millis(50);
        cluster.world.run_until(settle);

        // Zero lost or duplicated replies: every client adopted exactly one
        // reply per workload command, with distinct request ids.
        for c in 0..3 {
            let completed = cluster.client(c).completed();
            assert_eq!(completed.len(), per_client, "seed {seed}: client {c}");
            let mut ids: Vec<_> = completed.iter().map(|d| d.request.id).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(
                ids.len(),
                per_client,
                "seed {seed}: client {c} duplicated a reply"
            );
        }
        cluster
            .check_per_group_consistency()
            .unwrap_or_else(|e| panic!("seed {seed}: per-group consistency: {e}"));
        cluster
            .check_external_consistency()
            .unwrap_or_else(|e| panic!("seed {seed}: external consistency: {e}"));
        assert_eq!(cluster.total_misroutes(), 0, "seed {seed}");

        // Stale-routed traffic was counted and redirected.
        assert!(
            cluster.total_redirected() > 0,
            "seed {seed}: migration under traffic must redirect something"
        );
        // Transfer wires within the s² bound: each donor replica ships the
        // range to each recipient member at most once.
        assert!(
            cluster.total_migrate_state_wires() <= 9,
            "seed {seed}: {} transfer wires exceed the s² bound",
            cluster.total_migrate_state_wires()
        );
        // The migrated range lives identically on every recipient replica
        // and is gone from every donor replica.
        let recipient = cluster.range_digests(1, &range);
        assert!(
            recipient.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: recipient range digests diverge: {recipient:?}"
        );
        let donor = cluster.range_digests(0, &range);
        let empty = oar::state_machine::entries_digest::<String, String>(&[]);
        assert!(
            donor.iter().all(|d| *d == Some(empty)),
            "seed {seed}: donor still holds migrated keys: {donor:?}"
        );
        // The shipped and installed snapshots agreed bit-for-bit.
        let outs: Vec<u64> = (0..3)
            .map(|i| cluster.server(0, i).stats().migrate_out_digest)
            .collect();
        let ins: Vec<u64> = (0..3)
            .map(|i| cluster.server(1, i).stats().migrate_in_digest)
            .collect();
        for d in outs.iter().chain(&ins) {
            assert_eq!(
                *d, outs[0],
                "seed {seed}: transfer digests disagree ({outs:?} vs {ins:?})"
            );
        }
    }
}

fn kv_keys_workload(client: usize, n: usize) -> Vec<KvCommand> {
    (0..n)
        .map(|i| KvCommand::Put {
            key: format!("k{:02}", (client * 11 + i * 3) % 24),
            value: format!("c{client}i{i}"),
        })
        .collect()
}

/// The tentpole, part 3: a divergent settled value injected into one replica
/// is localised through the Merkle descent in O(log n) digest wires and
/// healed by majority vote.
#[test]
fn merkle_anti_entropy_heals_injected_divergence() {
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 2,
        net: NetConfig::lan(),
        oar: OarConfig {
            anti_entropy: true,
            ..OarConfig::with_fd_timeout(SimDuration::from_millis(25))
        },
        seed: 9,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<KvMachine> =
        Cluster::build(&config, KvMachine::new, |c| kv_keys_workload(c, 40));
    assert!(cluster.run_to_completion(SimTime::from_secs(30)));
    // Let the group quiesce at a common settled position, with probes
    // running but finding nothing.
    let settle = cluster.world.now() + SimDuration::from_millis(100);
    cluster.world.run_until(settle);
    assert!(cluster.total_sync_probes() > 0, "probes must be running");
    assert_eq!(
        cluster.total_sync_node_wires(),
        0,
        "equal replicas must exchange no descent wires"
    );

    assert!(
        cluster.inject_divergence(1, "k05", Some("corrupted")),
        "injection must change the state"
    );
    let heal = cluster.world.now() + SimDuration::from_millis(200);
    cluster.world.run_until(heal);

    assert!(
        cluster.total_sync_repairs() >= 1,
        "the corrupted replica must repair itself"
    );
    run_cluster_checks(&cluster, "anti-entropy heal");
    // O(log n) localisation: the 24 distinct keys pad to 32 leaves, depth 5.
    // Each divergent probe costs one root node plus at most 2 wires per
    // level; a handful of probes race before the heal lands.
    let depth = 24u64.next_power_of_two().trailing_zeros() as u64;
    let bound = 12 * (2 * depth + 2);
    assert!(
        cluster.total_sync_node_wires() <= bound,
        "descent cost {} exceeds the O(log n) bound {bound}",
        cluster.total_sync_node_wires()
    );
    assert!(
        cluster.total_sync_node_wires() >= depth,
        "the descent must actually walk the tree"
    );
}

/// Shape-divergent anti-entropy (REVIEW regression): deleting a key on one
/// replica across a power-of-two boundary (9 settled keys pad to 16 leaves,
/// 8 pad to 8) makes the heap-index descent incomparable. The replicas must
/// detect the width mismatch, fall back to the full key-set exchange
/// (`SyncKeys`), and heal by majority vote — not descend forever.
#[test]
fn merkle_anti_entropy_heals_shape_divergence() {
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 2,
        net: NetConfig::lan(),
        oar: OarConfig {
            anti_entropy: true,
            ..OarConfig::with_fd_timeout(SimDuration::from_millis(25))
        },
        seed: 11,
        ..ClusterConfig::default()
    };
    // Exactly 9 distinct keys: one past the 8-leaf power of two.
    let mut cluster: Cluster<KvMachine> = Cluster::build(&config, KvMachine::new, |c| {
        (0..27)
            .map(|i| KvCommand::Put {
                key: format!("k{}", (c * 4 + i) % 9),
                value: format!("c{c}i{i}"),
            })
            .collect()
    });
    assert!(cluster.run_to_completion(SimTime::from_secs(30)));
    let settle = cluster.world.now() + SimDuration::from_millis(100);
    cluster.world.run_until(settle);
    assert!(cluster.total_sync_probes() > 0, "probes must be running");

    // Delete a key on replica 1: its tree narrows to 8 leaves while the
    // others keep 16 — no aligned descent exists.
    assert!(
        cluster.inject_divergence(1, "k4", None),
        "injection must change the state"
    );
    let wires_before = cluster.total_sync_node_wires();
    let heal = cluster.world.now() + SimDuration::from_millis(200);
    cluster.world.run_until(heal);

    assert!(
        cluster.total_sync_repairs() >= 1,
        "the narrowed replica must re-install the deleted key"
    );
    run_cluster_checks(&cluster, "anti-entropy shape heal");
    assert!(
        cluster.total_sync_node_wires() > wires_before,
        "the key-set fallback must have travelled"
    );
    // The fallback is bounded: one `SyncKeys` round trip per divergent
    // probe, never an unbounded descent. A handful of probes race before
    // the heal lands; each costs at most 2 key-set wires.
    assert!(
        cluster.total_sync_node_wires() - wires_before <= 24,
        "shape fallback cost {} wires — the mismatch must not loop",
        cluster.total_sync_node_wires() - wires_before
    );
}
