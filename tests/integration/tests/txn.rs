//! End-to-end checks of the multi-key transaction layer over the sharded
//! deployment: cross-group atomicity (no group applies a committed
//! transaction's writes while another participating group drops them),
//! read-your-committed-writes across groups, commit liveness under one
//! participating group's sequencer crash, and isolation from concurrent
//! single-key traffic.

use oar::shard::ShardRouter;
use oar::sharded::{ShardedClient, ShardedConfig};
use oar::txn::TxnCluster;
use oar::{OarConfig, OarServer};
use oar_apps::kv::{KvCommand, KvMachine, KvResponse};
use oar_simnet::{NetConfig, SimDuration, SimTime};

fn put(key: &str, value: &str) -> KvCommand {
    KvCommand::Put {
        key: key.into(),
        value: value.into(),
    }
}

fn get(key: &str) -> KvCommand {
    KvCommand::Get { key: key.into() }
}

fn txn_config(groups: usize, seed: u64) -> ShardedConfig {
    ShardedConfig {
        num_groups: groups,
        servers_per_group: 3,
        num_clients: 2,
        router: ShardRouter::hash(groups),
        net: NetConfig::lan(),
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(25)),
        seed,
        think_time: SimDuration::ZERO,
        client_pipeline: 1,
        adaptive_pipeline: false,
    }
}

/// Transactions spreading two writes over a 24-key pool — under the hash
/// router most of them span two groups.
fn spanning_workload(client: usize, n: usize) -> Vec<Vec<KvCommand>> {
    (0..n)
        .map(|i| {
            let a = format!("k{:02}", (client * 11 + i * 3) % 24);
            let b = format!("k{:02}", (client * 11 + i * 3 + 7) % 24);
            vec![
                put(&a, &format!("c{client}t{i}a")),
                put(&b, &format!("c{client}t{i}b")),
            ]
        })
        .collect()
}

fn run_checks(cluster: &TxnCluster<KvMachine>, label: &str) {
    cluster
        .check_per_group_consistency()
        .unwrap_or_else(|e| panic!("[{label}] per-group consistency: {e}"));
    cluster
        .check_txn_atomicity()
        .unwrap_or_else(|e| panic!("[{label}] atomicity: {e}"));
    cluster
        .check_external_consistency()
        .unwrap_or_else(|e| panic!("[{label}] external consistency: {e}"));
    assert_eq!(
        cluster.total_misroutes(),
        0,
        "[{label}] misroutes must be 0"
    );
}

/// Atomicity across groups, failure-free: every committed transaction's
/// prepare is settled by **every** participating group — checked both
/// through the cluster's atomicity check and directly against each group's
/// stable state.
#[test]
fn committed_multi_group_txns_settle_in_every_participating_group() {
    for seed in [3u64, 19, 40] {
        let config = txn_config(3, seed);
        let mut cluster: TxnCluster<KvMachine> =
            TxnCluster::build(&config, KvMachine::new, |c| spanning_workload(c, 12));
        assert!(
            cluster.run_to_completion(SimTime::from_secs(30)),
            "seed {seed}: workload did not commit"
        );
        assert_eq!(cluster.completed_txns().len(), 24);
        run_checks(&cluster, &format!("seed {seed}"));
        assert!(
            cluster.multi_group_commits() > 0,
            "seed {seed}: the workload must span groups"
        );
        // Direct cross-check of the atomicity property: for every committed
        // transaction, every per-group prepare appears in the owning group's
        // delivery order at some alive server.
        for txn in cluster.completed_txns() {
            for part in &txn.parts {
                let settled = cluster.groups[part.group.index()].iter().any(|&s| {
                    cluster
                        .world
                        .process_ref::<OarServer<KvMachine>>(s)
                        .committed_sequence()
                        .contains(&part.request)
                });
                assert!(
                    settled,
                    "seed {seed}: {} of {} dropped by {}",
                    part.request, txn.id, part.group
                );
            }
        }
    }
}

/// Read-your-committed-writes across groups: once a transaction's commit is
/// reported, a subsequent read transaction by the same (closed-loop) client
/// observes that commit's writes in **every** group — the optimistic quorum
/// contains each group's sequencer, so the writes are already ordered ahead
/// of the reads.
#[test]
fn reads_across_groups_observe_the_readers_committed_writes() {
    // Range router pinning `a*` keys to group 0 and `z*` keys to group 1.
    let router = ShardRouter::range(vec!["m".to_string()]);
    let config = ShardedConfig {
        num_groups: 2,
        num_clients: 1,
        router,
        ..txn_config(2, 77)
    };
    let rounds = 10usize;
    // write txn (both groups), then read txn (both groups), alternating.
    let workload: Vec<Vec<KvCommand>> = (0..rounds)
        .flat_map(|i| {
            vec![
                vec![
                    put("acct:a", &format!("v{i}")),
                    put("zacct:b", &format!("v{i}")),
                ],
                vec![get("acct:a"), get("zacct:b")],
            ]
        })
        .collect();
    let mut cluster: TxnCluster<KvMachine> =
        TxnCluster::build(&config, KvMachine::new, move |_| workload.clone());
    assert!(cluster.run_to_completion(SimTime::from_secs(30)));
    run_checks(&cluster, "read-your-writes");
    let client = cluster.client(0);
    assert_eq!(client.completed().len(), 2 * rounds);
    let mut by_index: Vec<_> = client.completed().to_vec();
    by_index.sort_by_key(|t| t.index);
    for (i, pair) in by_index.chunks(2).enumerate() {
        let read = &pair[1];
        assert!(read.is_multi_group(), "the read spans both groups");
        // Each part of the read transaction must return the value the
        // immediately preceding committed write transaction stored in that
        // part's group.
        let expected = KvResponse::Value(Some(format!("v{i}")));
        for part in &read.parts {
            assert_eq!(
                part.response, expected,
                "round {i}: group {} served a stale read",
                part.group
            );
        }
    }
}

/// Commit liveness under fail-over: a participating group's sequencer
/// crashes mid-run; its prepares settle through the conservative phase
/// (replies with full weight), every transaction still commits, and the
/// other groups never leave the optimistic phase.
#[test]
fn commits_survive_one_participating_groups_sequencer_crash() {
    let config = txn_config(3, 42);
    let mut cluster: TxnCluster<KvMachine> =
        TxnCluster::build(&config, KvMachine::new, |c| spanning_workload(c, 12));
    let victim = cluster.groups[1][0]; // group 1's epoch-0 sequencer
    cluster
        .world
        .schedule_crash(victim, SimTime::from_millis(4));
    assert!(
        cluster.run_to_completion(SimTime::from_secs(60)),
        "every transaction must commit despite the crash"
    );
    assert_eq!(cluster.completed_txns().len(), 24);
    run_checks(&cluster, "sequencer crash");
    assert!(
        cluster.sum_group_stats(1, |st| st.phase2_entered) > 0,
        "the crashed group must have failed over"
    );
    for g in [0usize, 2] {
        assert_eq!(
            cluster.sum_group_stats(g, |st| st.phase2_entered),
            0,
            "group {g} must not react to another group's crash"
        );
    }
    // At least one commit was confirmed conservatively: a part adopted with
    // the full group weight (3), not the optimistic {p, s} (2).
    let conservative_parts = cluster
        .completed_txns()
        .iter()
        .flat_map(|t| t.parts.iter())
        .filter(|p| p.adopted_weight == 3)
        .count();
    assert!(
        conservative_parts > 0,
        "the fail-over window must have produced conservative confirmations"
    );
}

/// Isolation from concurrent single-key traffic: a plain sharded client
/// hammers the same key space while transactions run. Both finish, both
/// stay consistent, and the transactional checks still hold.
#[test]
fn txns_are_isolated_from_concurrent_single_key_traffic() {
    let config = txn_config(2, 13);
    let mut cluster: TxnCluster<KvMachine> =
        TxnCluster::build(&config, KvMachine::new, |c| spanning_workload(c, 10));
    // A plain (non-transactional) client over the same groups and router,
    // writing the same 24-key pool.
    let plain_workload: Vec<KvCommand> = (0..30)
        .map(|i| put(&format!("k{:02}", (i * 5) % 24), &format!("plain{i}")))
        .collect();
    let plain_client: ShardedClient<KvMachine> = ShardedClient::new(
        oar_simnet::ProcessId::new(cluster.world.num_processes()),
        cluster.groups.clone(),
        cluster.router.clone(),
        plain_workload,
        oar::ClientConfig::default(),
    );
    let plain_id = cluster.world.add_process(plain_client);
    // Drive the world until both client kinds are done.
    let horizon = SimTime::from_secs(60);
    loop {
        let next = cluster.world.now() + SimDuration::from_millis(50);
        cluster.world.run_until(next);
        let plain_done = cluster
            .world
            .process_ref::<ShardedClient<KvMachine>>(plain_id)
            .is_done();
        if (cluster.all_clients_done() && plain_done) || cluster.world.now() >= horizon {
            assert!(cluster.all_clients_done(), "transactions must commit");
            assert!(plain_done, "single-key traffic must complete");
            break;
        }
    }
    run_checks(&cluster, "mixed traffic");
    assert_eq!(cluster.completed_txns().len(), 20);
    let plain = cluster
        .world
        .process_ref::<ShardedClient<KvMachine>>(plain_id);
    assert_eq!(plain.completed().len(), 30);
    // The plain client's adopted positions agree with the servers that
    // settled them — external consistency is undisturbed by the interleaved
    // transactional traffic.
    for done in plain.completed() {
        for &s in &cluster.groups[done.group.index()] {
            let server = cluster.world.process_ref::<OarServer<KvMachine>>(s);
            if let Some(pos) = server
                .committed_sequence()
                .iter()
                .position(|id| *id == done.request.id)
            {
                assert_eq!(
                    (pos + 1) as u64,
                    done.request.position,
                    "plain request {} settled at a different position",
                    done.request.id
                );
            }
        }
    }
}

/// Concurrent writers on overlapping key sets: transactions from several
/// clients interleave freely across groups; every per-group order stays
/// consistent and every commit is atomic (multi-seed).
#[test]
fn concurrent_overlapping_txns_stay_atomic_over_many_seeds() {
    for seed in 0..4u64 {
        let config = ShardedConfig {
            num_clients: 3,
            client_pipeline: 2,
            ..txn_config(2 + (seed % 2) as usize, seed)
        };
        let mut cluster: TxnCluster<KvMachine> =
            TxnCluster::build(&config, KvMachine::new, |c| spanning_workload(c, 8));
        assert!(
            cluster.run_to_completion(SimTime::from_secs(30)),
            "seed {seed}: workload did not commit"
        );
        assert_eq!(cluster.completed_txns().len(), 24);
        run_checks(&cluster, &format!("overlap seed {seed}"));
    }
}
