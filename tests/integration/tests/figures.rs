//! Integration tests replaying the paper's figures end-to-end (via the
//! scenario builders of `oar-bench`) and asserting the behaviour each figure
//! illustrates.

use oar_bench::figures;

#[test]
fn figure_1a_fixed_sequencer_good_run() {
    let out = figures::figure_1a(101);
    assert!(out.consistent, "{out:?}");
    assert_eq!(out.client_inconsistencies, 0);
}

#[test]
fn figure_1b_fixed_sequencer_inconsistent_run() {
    let out = figures::figure_1b(101);
    assert!(
        out.client_inconsistencies > 0,
        "the baseline should leak an inconsistent reply: {out:?}"
    );
}

#[test]
fn figure_1b_oar_prevents_the_inconsistency() {
    let out = figures::figure_1b_oar(101);
    assert!(out.consistent, "{out:?}");
}

#[test]
fn figure_2_failure_free_optimistic_only() {
    let out = figures::figure_2(101);
    assert!(out.consistent, "{out:?}");
    assert_eq!(out.phase2_entries, 0);
    assert_eq!(out.undeliveries, 0);
    assert!(out.timeline.contains("Opt-deliver"));
    assert!(!out.timeline.contains("A-deliver"));
}

#[test]
fn figure_3_sequencer_crash_without_undelivery() {
    let out = figures::figure_3(101);
    assert!(out.consistent, "{out:?}");
    assert!(out.phase2_entries > 0);
    assert_eq!(out.undeliveries, 0);
    assert!(out.timeline.contains("PhaseII"));
    assert!(out.timeline.contains("A-deliver"));
    assert!(!out.timeline.contains("Opt-undeliver"));
}

#[test]
fn figure_4_sequencer_crash_with_undelivery() {
    let out = figures::figure_4(101);
    assert!(out.consistent, "{out:?}");
    assert!(
        out.undeliveries > 0,
        "the minority's optimistic deliveries must be undone"
    );
    assert!(out.timeline.contains("Opt-undeliver"));
}

#[test]
fn figure_scenarios_are_deterministic_for_a_given_seed() {
    let a = figures::figure_4(2024);
    let b = figures::figure_4(2024);
    assert_eq!(a.undeliveries, b.undeliveries);
    assert_eq!(a.phase2_entries, b.phase2_entries);
    assert_eq!(a.timeline, b.timeline);
}
