//! Twin-run equivalence across runtime backends.
//!
//! The runtime boundary promises that the protocol crates contain no
//! backend-specific logic: the same `OarServer` and client code runs on the
//! deterministic simulator (`oar-simnet`) and on the real-clock threaded
//! backend (`oar-rtnet`). This test holds the boundary to that promise by
//! running the *same* workload — fixed seed, per-client disjoint key sets —
//! on both backends and requiring that every replica of both runs converges
//! to the **bit-identical** state-machine digest.
//!
//! Timing differs radically between the twins (virtual microseconds vs real
//! threads racing on real queues), so delivery interleavings differ — but
//! with disjoint per-client keys and per-client FIFO submission, total order
//! plus determinism force the same final KV content everywhere. The rtnet run
//! additionally re-checks the paper's propositions (at-most-once, total
//! order, external consistency) on real threads via the runtime-agnostic
//! checks of `oar::consistency`.

use oar::openloop::OpenLoopClient;
use oar::server::OarServer;
use oar::{
    check_external_consistency, check_server_consistency, ClientConfig, OarConfig, OarWire,
    StateMachine,
};
use oar_apps::kv::{KvCommand, KvMachine, KvResponse};
use oar_rtnet::{RtNet, RunOptions};
use oar_simnet::{NetConfig, ProcessId, SimDuration, SimTime, World};

const SEED: u64 = 20010614;
const SERVERS: usize = 3;
const CLIENTS: usize = 2;
const REQUESTS: usize = 60;

type Wire = OarWire<KvCommand, KvResponse>;

/// Per-client disjoint keys: interleaving across clients cannot change the
/// final KV content, only per-client submission order matters (which both
/// backends preserve: FIFO links in the simulator, FIFO mpsc channels on
/// rtnet).
fn workload(client: usize, n: usize) -> Vec<KvCommand> {
    (0..n)
        .map(|i| KvCommand::Put {
            key: format!("c{client}-k{}", i % 8),
            value: format!("v{i}"),
        })
        .collect()
}

fn oar_config() -> OarConfig {
    // Wide failure-detector timeout: the rtnet twin runs on real threads
    // where a stalled scheduler must not look like a crashed sequencer.
    OarConfig::builder()
        .fd_timeout(SimDuration::from_millis(500))
        .build()
}

/// Runs the workload on the simulator and returns the common replica digest.
fn simnet_digest() -> u64 {
    let mut world: World<Wire> = World::new(NetConfig::lan(), SEED);
    let server_ids: Vec<ProcessId> = (0..SERVERS).map(ProcessId::new).collect();
    for &id in &server_ids {
        world.add_process(OarServer::new(
            id,
            server_ids.clone(),
            oar_config(),
            KvMachine::default(),
        ));
    }
    let mut client_ids = Vec::new();
    for c in 0..CLIENTS {
        let client = OpenLoopClient::<KvMachine>::new(
            ProcessId::new(SERVERS + c),
            server_ids.clone(),
            workload(c, REQUESTS),
            SimDuration::from_micros(300),
            ClientConfig::default(),
        );
        client_ids.push(world.add_process(client));
    }
    world.run_until_quiescent(SimTime::from_secs(60));
    for &id in &client_ids {
        let client = world.process_ref::<OpenLoopClient<KvMachine>>(id);
        assert!(client.is_done(), "simnet twin did not drain");
    }
    let digests: Vec<u64> = server_ids
        .iter()
        .map(|&id| {
            world
                .process_ref::<OarServer<KvMachine>>(id)
                .state_machine()
                .digest()
        })
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "simnet replicas diverged: {digests:x?}"
    );
    digests[0]
}

#[test]
fn rtnet_twin_converges_to_the_simnet_digest() {
    let expected = simnet_digest();

    let mut net: RtNet<Wire> = RtNet::new(SEED);
    let server_ids: Vec<ProcessId> = (0..SERVERS).map(ProcessId::new).collect();
    for &id in &server_ids {
        net.add_process(OarServer::new(
            id,
            server_ids.clone(),
            oar_config(),
            KvMachine::default(),
        ));
    }
    let mut client_ids = Vec::new();
    for c in 0..CLIENTS {
        let client = OpenLoopClient::<KvMachine>::new(
            ProcessId::new(SERVERS + c),
            server_ids.clone(),
            workload(c, REQUESTS),
            SimDuration::from_micros(300),
            ClientConfig::default(),
        );
        client_ids
            .push(net.add_process_until(client, |cl: &OpenLoopClient<KvMachine>| cl.is_done()));
    }
    let report = net.run(RunOptions {
        max_wall: std::time::Duration::from_secs(30),
        // Let in-flight optimistic deliveries settle on every replica after
        // the last quorum, so the digests below compare final states.
        grace: std::time::Duration::from_millis(300),
        poll: std::time::Duration::from_millis(5),
    });
    assert!(report.completed, "rtnet twin hit the wall-clock cap");

    // Every client drained its workload.
    let mut per_client: Vec<&[oar::CompletedRequest<KvResponse>]> = Vec::new();
    for &id in &client_ids {
        let client = report.process_ref::<OpenLoopClient<KvMachine>>(id);
        assert!(client.is_done(), "client {id} still has outstanding work");
        assert_eq!(client.completed().len(), REQUESTS);
        per_client.push(client.completed());
    }

    // Propositions hold on real threads: at-most-once, total order and
    // external consistency, straight from the runtime-agnostic checks.
    let servers: Vec<&OarServer<KvMachine>> = server_ids
        .iter()
        .map(|&id| report.process_ref::<OarServer<KvMachine>>(id))
        .filter(|s| !s.is_recovering())
        .collect();
    check_server_consistency(&servers).expect("rtnet server propositions");
    check_external_consistency(&servers, &per_client).expect("rtnet external consistency");

    // The tentpole claim: bit-identical convergence across backends.
    for server in &servers {
        assert_eq!(
            server.state_machine().digest(),
            expected,
            "server {} diverged from the simnet twin",
            server.id()
        );
    }
}
