//! End-to-end checks of the adaptive batching & pipelining subsystem: the
//! controller dynamics under load steps, the flush-deadline latency bound,
//! and the light-load no-overhead guarantee — with the paper's propositions
//! (total order, at-most-once, external consistency) checked on every run.

use oar::cluster::{Cluster, ClusterConfig};
use oar::state_machine::{CounterCommand, CounterMachine};
use oar::OarConfig;
use oar_simnet::{NetConfig, SimDuration, SimTime};

fn workload(n: usize) -> Vec<CounterCommand> {
    (0..n)
        .map(|i| CounterCommand::Add(i as i64 % 5 + 1))
        .collect()
}

/// Under light load the adaptive deployment must be *behaviourally
/// identical* to the unbatched paper protocol: the controller keeps the
/// target at 1, the window stays closed-loop, and the two simulations
/// produce the same latencies on the same seed.
#[test]
fn adaptive_is_identical_to_unbatched_at_light_load() {
    let run = |oar: OarConfig, adaptive_pipeline: bool| {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 1,
            oar,
            seed: 17,
            client_pipeline: if adaptive_pipeline { 8 } else { 1 },
            adaptive_pipeline,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |_| workload(25));
        assert!(cluster.run_to_completion(SimTime::from_secs(30)));
        cluster.check_replica_consistency().unwrap();
        cluster.check_external_consistency().unwrap();
        cluster
    };
    let unbatched = run(OarConfig::default(), false);
    let adaptive = run(OarConfig::adaptive(), true);
    let lat_a = adaptive.latencies();
    let lat_u = unbatched.latencies();
    assert_eq!(lat_a.len(), lat_u.len());
    // Same seed, same message schedule: a single closed-loop client never
    // fills a batch, so the adaptive run replays the unbatched one exactly.
    assert!((lat_a.mean().unwrap() - lat_u.mean().unwrap()).abs() < 1e-9);
    assert!((lat_a.quantile(0.99).unwrap() - lat_u.quantile(0.99).unwrap()).abs() < 1e-9);
    // And the controller never ramped.
    assert_eq!(adaptive.total_target_raises(), 0);
    assert_eq!(adaptive.max_batch_target(), 1);
    assert_eq!(adaptive.peak_effective_batch(), 1);
}

/// A load step (1 client → 8 clients mid-run) must ramp the sequencer's
/// target and the clients' windows within the burst, and the load drop must
/// decay them back — with every proposition still green.
#[test]
fn load_step_converges_and_load_drop_decays() {
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 8,
        oar: OarConfig::adaptive(),
        seed: 23,
        client_pipeline: 8,
        adaptive_pipeline: true,
        // Client 0 runs the whole time; clients 1..=7 pile in at 2ms and
        // finish well before client 0's long workload drains.
        client_start_delays: std::iter::once(SimDuration::ZERO)
            .chain(std::iter::repeat_n(SimDuration::from_millis(2), 7))
            .collect(),
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |c| {
            workload(if c == 0 { 120 } else { 40 })
        });
    assert!(cluster.run_to_completion(SimTime::from_secs(60)));
    assert_eq!(cluster.completed_requests().len(), 120 + 7 * 40);
    // Propositions survive the whole ramp/decay cycle.
    cluster.check_replica_consistency().unwrap();
    cluster.check_external_consistency().unwrap();
    // Convergence up: the burst formed real batches within the run.
    assert!(
        cluster.total_target_raises() > 0,
        "the controller must ramp during the burst"
    );
    assert!(
        cluster.peak_effective_batch() >= 8,
        "the burst should batch at least one request per client (peak {})",
        cluster.peak_effective_batch()
    );
    assert!(
        cluster.peak_client_window() >= 4,
        "client windows should open during the burst (peak {})",
        cluster.peak_client_window()
    );
    // Decay back: once the burst clients finish, the rate estimate shrinks
    // and the target walks down from its burst-time value.
    assert!(
        cluster.total_target_drops() > 0,
        "the controller must decay after the load drop"
    );
    assert!(
        cluster.max_batch_target() <= 8,
        "the target should be near the single-client rate again (target {})",
        cluster.max_batch_target()
    );
}

/// The flush deadline bounds the ordering latency of a partial batch
/// *independent of the maintenance tick*: with a 50ms tick and a 300µs
/// deadline, a 3-request backlog (batch threshold 8) completes in well under
/// a millisecond; without the deadline the same deployment waits for the
/// tick.
#[test]
fn flush_deadline_bounds_partial_batch_latency_independent_of_tick() {
    let run = |flush_delay: Option<SimDuration>| {
        let mut builder = OarConfig::builder()
            .max_batch(8)
            .tick_interval(SimDuration::from_millis(50))
            // Keep the failure detector far away from the stretched tick.
            .fd_timeout(SimDuration::from_millis(400));
        if let Some(delay) = flush_delay {
            builder = builder.flush_delay(delay);
        }
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 1,
            net: NetConfig::constant(SimDuration::from_micros(100)),
            oar: builder.build(),
            seed: 5,
            client_pipeline: 3,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |_| workload(3));
        assert!(cluster.run_to_completion(SimTime::from_secs(10)));
        cluster.check_replica_consistency().unwrap();
        cluster.check_external_consistency().unwrap();
        cluster
    };

    // With the deadline: the partial batch of 3 flushes ~300µs after it
    // formed, so every request completes in well under a millisecond.
    let bounded = run(Some(SimDuration::from_micros(300)));
    let worst = bounded.latencies().max().unwrap();
    assert!(
        worst < 1.0,
        "deadline-flushed latency should be sub-millisecond, got {worst:.3}ms"
    );
    assert!(
        bounded.total_deadline_flushes() >= 1,
        "the deadline timer must have fired"
    );

    // Without it: the same partial batch sits until the 50ms maintenance
    // tick — the regression this satellite fixes.
    let tick_bound = run(None);
    assert!(
        tick_bound.latencies().max().unwrap() > 10.0,
        "without a deadline the batch waits for the tick, got {:.3}ms",
        tick_bound.latencies().max().unwrap()
    );
    assert_eq!(tick_bound.total_deadline_flushes(), 0);
}

/// The deadline also holds in adaptive mode, where it doubles as the
/// controller's batching horizon: a burst that does not reach the ramped
/// target is still ordered within `max_delay`.
#[test]
fn adaptive_mode_flushes_partial_batches_by_deadline() {
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 4,
        oar: OarConfig::adaptive(),
        seed: 31,
        client_pipeline: 8,
        adaptive_pipeline: true,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |_| workload(40));
    assert!(cluster.run_to_completion(SimTime::from_secs(30)));
    cluster.check_replica_consistency().unwrap();
    cluster.check_external_consistency().unwrap();
    // Once the target ramps past 1, stragglers are flushed by the deadline
    // rather than a full batch or the 1ms tick; the p99 latency stays well
    // below one tick plus a round trip.
    assert!(cluster.total_deadline_flushes() > 0);
    let p99 = cluster.latencies().quantile(0.99).unwrap();
    assert!(
        p99 < 1.2,
        "p99 {p99:.3}ms should stay below a tick + round trip"
    );
}
