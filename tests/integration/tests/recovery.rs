//! Crash → restart → catch-up: end-to-end recovery of restarted replicas.
//!
//! Each test crashes a replica mid-run with [`World::schedule_crash`], revives
//! it with [`Cluster::schedule_server_restart`] (fresh in-memory state — the
//! crash lost everything), and checks that the rejoiner:
//!
//! * catches up by **snapshot + delta**, not by replaying the full history
//!   (`catch_up_snapshot_position > 0`);
//! * ends **bit-identical** to the survivors — same settled digest, same
//!   settled position, same chained order hash (the replica-consistency
//!   checks compare compacted replicas through those);
//! * **resumes participation**: it settles requests ordered after its rejoin;
//! * is **un-suspected** by its peers' failure detectors once its fresh
//!   heartbeats arrive (satellite a);
//! * never replays a settled request and never re-relays one — the seen-set
//!   aging and door-drop filters stay correct across the restart
//!   (satellite b, the relay ping-pong regression class).

use oar::cluster::{Cluster, ClusterConfig};
use oar::state_machine::{CounterCommand, CounterMachine};
use oar::OarConfig;
use oar_simnet::{NetConfig, ProcessId, SimDuration, SimTime};

fn counter_workload(client: usize, n: usize) -> Vec<CounterCommand> {
    (0..n)
        .map(|i| CounterCommand::Add((client * 31 + i) as i64 % 11 + 1))
        .collect()
}

fn run_checks<S: oar::StateMachine>(cluster: &Cluster<S>, label: &str) {
    cluster
        .check_replica_consistency()
        .unwrap_or_else(|e| panic!("[{label}] replica consistency: {e}"));
    cluster
        .check_external_consistency()
        .unwrap_or_else(|e| panic!("[{label}] external consistency: {e}"));
}

/// Recovery-flavoured config: proactive epoch cuts feed the snapshot
/// trigger, and snapshots every 2 epochs keep the catch-up delta short.
fn recovery_oar() -> OarConfig {
    OarConfig {
        epoch_cut_after: Some(4),
        snapshot_every: Some(2),
        ..OarConfig::with_fd_timeout(SimDuration::from_millis(20))
    }
}

/// Runs to completion, then keeps the world going so in-flight recovery,
/// watermarks and heartbeats settle before the checks.
fn run_and_settle<S: oar::StateMachine>(cluster: &mut Cluster<S>, horizon: SimTime) -> bool {
    let done = cluster.run_to_completion(horizon);
    let settle = cluster.world.now() + SimDuration::from_millis(120);
    cluster.world.run_until(settle);
    done
}

/// The tentpole, multi-seed: a non-sequencer replica crashes under load,
/// restarts with blank state, fetches snapshot + delta from a donor and ends
/// consistent with the survivors — then keeps settling new requests.
#[test]
fn restarted_replica_catches_up_by_snapshot_plus_delta() {
    for seed in 0..6u64 {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::constant(SimDuration::from_micros(150)),
            oar: recovery_oar(),
            client_pipeline: 4,
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 80)
            });
        cluster
            .world
            .schedule_crash(ProcessId::new(2), SimTime::from_micros(2_000 + seed * 300));
        cluster.schedule_server_restart(
            SimTime::from_micros(10_000 + seed * 500),
            2,
            CounterMachine::default,
        );
        assert!(
            run_and_settle(&mut cluster, SimTime::from_secs(120)),
            "seed {seed}: workload did not finish across the restart"
        );
        assert_eq!(cluster.completed_requests().len(), 160, "seed {seed}");
        let rejoined = cluster.server(2);
        assert!(
            !rejoined.is_recovering(),
            "seed {seed}: replica 2 still mid-recovery at quiesce"
        );
        let stats = rejoined.stats();
        // Snapshot + delta, not full replay: the transfer started from a
        // non-zero snapshot position…
        assert!(
            stats.catch_up_snapshot_position > 0,
            "seed {seed}: catch-up replayed from position 0 (full replay)"
        );
        // …and the replica kept settling requests ordered after its rejoin.
        let transferred = stats.catch_up_snapshot_position + stats.catch_up_delta;
        assert!(
            rejoined.total_settled() > transferred,
            "seed {seed}: rejoined replica settled nothing new \
             (transfer {transferred}, settled {})",
            rejoined.total_settled()
        );
        // Bit-identical to a survivor at the common settled position.
        let survivor = cluster.server(1);
        let common = rejoined.total_settled().min(survivor.total_settled());
        assert_eq!(
            rejoined.order_hash_at(common),
            survivor.order_hash_at(common),
            "seed {seed}: settled prefixes diverge at {common}"
        );
        run_checks(&cluster, &format!("restart seed {seed}"));
        // Compaction kept the retained log bounded by the snapshot window,
        // not the 160-request workload.
        assert!(cluster.total_snapshots() > 0, "seed {seed}: no snapshots");
        let window = 2 * (4 + (config.num_clients * config.client_pipeline) as u64);
        assert!(
            cluster.peak_a_delivered_len() <= 2 * window,
            "seed {seed}: peak A_delivered {} exceeds the snapshot window bound {}",
            cluster.peak_a_delivered_len(),
            2 * window
        );
    }
}

/// Satellite (a): peers suspect a crashed replica, then un-suspect it after
/// the restart once its fresh heartbeats arrive.
#[test]
fn fd_unsuspects_restarted_replica_after_fresh_heartbeats() {
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 1,
        net: NetConfig::lan(),
        oar: recovery_oar(),
        seed: 11,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |c| counter_workload(c, 8));
    cluster
        .world
        .schedule_crash(ProcessId::new(2), SimTime::from_millis(1));
    // Let the detectors time the silence out.
    cluster.world.run_until(SimTime::from_millis(80));
    assert!(
        cluster.server(0).is_suspecting(ProcessId::new(2)),
        "peer 0 must suspect the crashed replica"
    );
    assert!(
        cluster.server(1).is_suspecting(ProcessId::new(2)),
        "peer 1 must suspect the crashed replica"
    );
    // Restart: catch-up runs, heartbeats resume, peers re-admit it.
    cluster.schedule_server_restart(SimTime::from_millis(85), 2, CounterMachine::default);
    cluster.world.run_until(SimTime::from_millis(300));
    assert!(
        !cluster.server(2).is_recovering(),
        "restarted replica must finish catch-up"
    );
    assert!(
        !cluster.server(0).is_suspecting(ProcessId::new(2)),
        "peer 0 must un-suspect the rejoined replica"
    );
    assert!(
        !cluster.server(1).is_suspecting(ProcessId::new(2)),
        "peer 1 must un-suspect the rejoined replica"
    );
    run_checks(&cluster, "fd-unsuspect");
}

/// Satellite (b): across a restart, no settled request is replayed (checked
/// by the at-most-once sweep inside the consistency checks) and stale relays
/// of settled requests die at the door instead of ping-ponging — the run
/// terminates and the duplicate-suppression set stays near-empty at quiesce.
#[test]
fn no_settled_replay_and_bounded_seen_across_restart() {
    for seed in 0..4u64 {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::constant(SimDuration::from_micros(150)),
            oar: recovery_oar(),
            client_pipeline: 4,
            seed: 100 + seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 60)
            });
        cluster
            .world
            .schedule_crash(ProcessId::new(1), SimTime::from_micros(1_500 + seed * 400));
        cluster.schedule_server_restart(
            SimTime::from_micros(9_000 + seed * 700),
            1,
            CounterMachine::default,
        );
        assert!(
            run_and_settle(&mut cluster, SimTime::from_secs(120)),
            "seed {seed}: run did not terminate (relay ping-pong?)"
        );
        // At-least-once with no duplicate adoption: every request completed
        // exactly once per client.
        assert_eq!(cluster.completed_requests().len(), 120, "seed {seed}");
        // At-most-once on every replica (duplicate sweep) + digest equality.
        run_checks(&cluster, &format!("seen-aging seed {seed}"));
        // The seen set was aged across the restart: at quiesce the settled
        // workload (120 ids and their PhaseII ids) has been forgotten.
        let window = 2 * (4 + (config.num_clients * config.client_pipeline) as u64) + 8;
        assert!(
            cluster.current_seen() <= 3 * window,
            "seed {seed}: {} seen ids retained at quiesce (bound {})",
            cluster.current_seen(),
            3 * window
        );
    }
}

/// Satellite (c): the *sequencer* crashes, the group fails over, and the old
/// sequencer restarts into a group that moved on — it must catch up and
/// resume as a follower without disturbing the new epoch.
#[test]
fn sequencer_restart_catches_up_after_failover() {
    for seed in 0..4u64 {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::constant(SimDuration::from_micros(150)),
            oar: recovery_oar(),
            client_pipeline: 4,
            seed: 200 + seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 60)
            });
        // Crash the epoch-0 sequencer: the group enters phase 2 and rotates.
        cluster
            .world
            .schedule_crash(ProcessId::new(0), SimTime::from_micros(1_000 + seed * 300));
        cluster.schedule_server_restart(
            SimTime::from_millis(60 + seed * 5),
            0,
            CounterMachine::default,
        );
        assert!(
            run_and_settle(&mut cluster, SimTime::from_secs(120)),
            "seed {seed}: workload did not finish after sequencer restart"
        );
        assert_eq!(cluster.completed_requests().len(), 120, "seed {seed}");
        assert!(
            cluster.total_phase2_entries() > 0,
            "seed {seed}: fail-over expected"
        );
        assert!(
            !cluster.server(0).is_recovering(),
            "seed {seed}: old sequencer still mid-recovery at quiesce"
        );
        run_checks(&cluster, &format!("sequencer-restart seed {seed}"));
    }
}

/// Satellite (c), hard case: the restart lands *during* an epoch change — a
/// second replica's crash forces phase 2 + consensus while the rejoiner is
/// mid-transfer, so the buffered-wire replay and the donor-phase handoff in
/// the catch-up reply are both exercised.
#[test]
fn restart_during_epoch_change_stays_consistent() {
    for seed in 0..4u64 {
        let config = ClusterConfig {
            num_servers: 5,
            num_clients: 2,
            net: NetConfig::constant(SimDuration::from_micros(150)),
            oar: recovery_oar(),
            client_pipeline: 4,
            seed: 300 + seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 50)
            });
        // Replica 4 crashes early and rejoins right as the sequencer crash
        // below forces the group through an epoch change.
        cluster
            .world
            .schedule_crash(ProcessId::new(4), SimTime::from_millis(1));
        cluster
            .world
            .schedule_crash(ProcessId::new(0), SimTime::from_millis(8));
        cluster.schedule_server_restart(
            SimTime::from_millis(8 + seed * 3),
            4,
            CounterMachine::default,
        );
        assert!(
            run_and_settle(&mut cluster, SimTime::from_secs(120)),
            "seed {seed}: workload did not finish across restart + epoch change"
        );
        assert_eq!(cluster.completed_requests().len(), 100, "seed {seed}");
        assert!(
            !cluster.server(4).is_recovering(),
            "seed {seed}: rejoiner still mid-recovery at quiesce"
        );
        run_checks(
            &cluster,
            &format!("restart-during-epoch-change seed {seed}"),
        );
    }
}

/// A restart with *no* surviving donor traffic hazard: the donor rotation +
/// backoff must survive the first donor being the other crashed replica.
#[test]
fn catch_up_rotates_donors_past_a_dead_peer() {
    let config = ClusterConfig {
        num_servers: 5,
        num_clients: 2,
        net: NetConfig::lan(),
        oar: recovery_oar(),
        seed: 42,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |c| {
            counter_workload(c, 30)
        });
    // Replica 1 stays down for good; replica 2 restarts. Replica 2's donor
    // rotation starts from its peer list and may well hit the dead replica 1
    // first — the retry timer must carry it to a live donor.
    cluster
        .world
        .schedule_crash(ProcessId::new(1), SimTime::from_millis(1));
    cluster
        .world
        .schedule_crash(ProcessId::new(2), SimTime::from_millis(2));
    cluster.schedule_server_restart(SimTime::from_millis(10), 2, CounterMachine::default);
    assert!(
        run_and_settle(&mut cluster, SimTime::from_secs(120)),
        "workload did not finish"
    );
    assert_eq!(cluster.completed_requests().len(), 60);
    assert!(
        !cluster.server(2).is_recovering(),
        "rejoiner must find a live donor despite the dead peer"
    );
    run_checks(&cluster, "dead-donor rotation");
}
