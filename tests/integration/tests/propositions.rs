//! End-to-end checks of the paper's correctness propositions (Appendix A)
//! under randomized fault schedules.
//!
//! Each run builds a full OAR deployment in the simulator, injects crashes
//! and/or partitions derived from the seed, drives client workloads to
//! completion and then checks:
//!
//! * **at-least-once** (Prop. 4): every client request completes;
//! * **at-most-once** (Props. 2–3): no server's settled sequence contains a
//!   request twice;
//! * **total order** (Prop. 5): settled sequences of alive servers are
//!   prefix-compatible and equal-length prefixes yield identical state
//!   digests;
//! * **external consistency** (Prop. 7): the reply adopted by each client
//!   matches the position at which every alive server settled the request.

use oar::cluster::{Cluster, ClusterConfig};
use oar::state_machine::{CounterCommand, CounterMachine};
use oar::OarConfig;
use oar_apps::bank::{BankCommand, BankMachine};
use oar_simnet::{NetConfig, ProcessId, SimDuration, SimTime};

fn counter_workload(client: usize, n: usize) -> Vec<CounterCommand> {
    (0..n)
        .map(|i| CounterCommand::Add((client * 31 + i) as i64 % 11 + 1))
        .collect()
}

fn run_checks<S: oar::StateMachine>(cluster: &Cluster<S>, label: &str) {
    cluster
        .check_replica_consistency()
        .unwrap_or_else(|e| panic!("[{label}] replica consistency: {e}"));
    cluster
        .check_external_consistency()
        .unwrap_or_else(|e| panic!("[{label}] external consistency: {e}"));
}

#[test]
fn failure_free_runs_over_many_seeds() {
    for seed in 0..10u64 {
        let config = ClusterConfig {
            num_servers: 3 + (seed % 3) as usize * 2, // 3, 5, 7
            num_clients: 2,
            net: NetConfig::lan(),
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 10)
            });
        assert!(
            cluster.run_to_completion(SimTime::from_secs(60)),
            "seed {seed}: workload did not finish"
        );
        assert_eq!(cluster.completed_requests().len(), 20, "seed {seed}");
        assert_eq!(
            cluster.total_phase2_entries(),
            0,
            "seed {seed}: no failures, no phase 2"
        );
        assert_eq!(cluster.total_undeliveries(), 0, "seed {seed}");
        run_checks(&cluster, &format!("failure-free seed {seed}"));
    }
}

#[test]
fn sequencer_crash_at_random_times() {
    for seed in 0..8u64 {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::lan(),
            oar: OarConfig::with_fd_timeout(SimDuration::from_millis(20)),
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 15)
            });
        // Crash the epoch-0 sequencer at a seed-dependent time.
        let crash_at = SimTime::from_micros(500 + seed * 700);
        cluster.world.schedule_crash(ProcessId::new(0), crash_at);
        assert!(
            cluster.run_to_completion(SimTime::from_secs(120)),
            "seed {seed}: workload did not finish after sequencer crash at {crash_at}"
        );
        // at-least-once: every request of every client completed
        assert_eq!(cluster.completed_requests().len(), 30, "seed {seed}");
        run_checks(&cluster, &format!("sequencer-crash seed {seed}"));
    }
}

#[test]
fn crash_of_a_non_sequencer_replica_is_invisible_to_clients() {
    for seed in 0..5u64 {
        let config = ClusterConfig {
            num_servers: 5,
            num_clients: 3,
            net: NetConfig::lan(),
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 10)
            });
        cluster.world.schedule_crash(
            ProcessId::new(2 + (seed % 3) as usize),
            SimTime::from_millis(1 + seed),
        );
        assert!(
            cluster.run_to_completion(SimTime::from_secs(60)),
            "seed {seed}"
        );
        assert_eq!(cluster.completed_requests().len(), 30, "seed {seed}");
        run_checks(&cluster, &format!("replica-crash seed {seed}"));
    }
}

#[test]
fn minority_partition_with_sequencer_crash_recovers_consistently() {
    // The Figure-4 family: the sequencer and one other replica are partitioned
    // away together with part of the client population, the sequencer crashes,
    // the majority moves on, the partition heals. Opt-undeliveries may or may
    // not occur depending on timing — consistency must hold either way.
    for seed in 0..6u64 {
        let config = ClusterConfig {
            num_servers: 5,
            num_clients: 3,
            net: NetConfig::constant(SimDuration::from_micros(100)),
            oar: OarConfig::with_fd_timeout(SimDuration::from_millis(25)),
            seed,
            client_start_delays: vec![
                SimDuration::ZERO,
                SimDuration::from_millis(4),
                SimDuration::from_micros(4_200),
            ],
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| counter_workload(c, 4));
        let servers = cluster.servers.clone();
        let clients = cluster.clients.clone();
        let mut minority = vec![servers[0], servers[1], clients[1], clients[2]];
        let majority = vec![servers[2], servers[3], servers[4], clients[0]];
        if seed % 2 == 0 {
            minority.push(clients[0]);
        }
        cluster
            .world
            .schedule_partition(SimTime::from_millis(3), vec![minority, majority]);
        cluster
            .world
            .schedule_crash(servers[0], SimTime::from_millis(6 + seed));
        cluster.world.schedule_heal(SimTime::from_millis(120));
        assert!(
            cluster.run_to_completion(SimTime::from_secs(120)),
            "seed {seed}: workload did not finish"
        );
        run_checks(&cluster, &format!("partition seed {seed}"));
    }
}

#[test]
fn repeated_sequencer_crashes_across_epochs() {
    // Crash the sequencer of epoch 0, then the sequencer of epoch 1 (server 1)
    // a bit later: the rotating-sequencer rule must keep making progress as
    // long as a majority is alive.
    let config = ClusterConfig {
        num_servers: 5,
        num_clients: 2,
        net: NetConfig::lan(),
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(20)),
        seed: 3,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |c| {
            counter_workload(c, 20)
        });
    cluster
        .world
        .schedule_crash(ProcessId::new(0), SimTime::from_millis(2));
    cluster
        .world
        .schedule_crash(ProcessId::new(1), SimTime::from_millis(60));
    assert!(
        cluster.run_to_completion(SimTime::from_secs(300)),
        "workload did not finish"
    );
    assert_eq!(cluster.completed_requests().len(), 40);
    assert!(
        cluster.total_phase2_entries() >= 2,
        "two fail-overs expected"
    );
    run_checks(&cluster, "double-crash");
}

#[test]
fn bank_invariants_hold_under_sequencer_crash() {
    let accounts = 6u32;
    let initial = 50i64;
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 3,
        net: NetConfig::lan(),
        oar: OarConfig::with_fd_timeout(SimDuration::from_millis(20)),
        seed: 17,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<BankMachine> = Cluster::build(
        &config,
        || BankMachine::with_accounts(accounts, initial),
        |client| {
            (0..12)
                .map(|i| BankCommand::Transfer {
                    from: (client as u32 * 2) % accounts,
                    to: (client as u32 * 2 + 1 + i as u32) % accounts,
                    amount: 3,
                })
                .collect()
        },
    );
    cluster
        .world
        .schedule_crash(ProcessId::new(0), SimTime::from_millis(2));
    assert!(cluster.run_to_completion(SimTime::from_secs(120)));
    run_checks(&cluster, "bank");
    for (i, &server) in cluster.servers.clone().iter().enumerate() {
        if cluster.world.is_crashed(server) {
            continue;
        }
        let bank = cluster
            .world
            .process_ref::<oar::OarServer<BankMachine>>(server)
            .state_machine();
        assert_eq!(
            bank.total_funds(),
            accounts as i64 * initial,
            "transfers must conserve funds at replica {i}"
        );
    }
}

#[test]
fn propositions_hold_with_batched_sequencer_under_crash() {
    // The `max_batch` knob must not affect safety, only message counts: rerun
    // the sequencer-crash scenario with batched ordering. The interesting
    // hazard is a partially accumulated batch (not yet flushed by the tick)
    // at the moment the group enters phase 2.
    for seed in 0..8u64 {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::lan(),
            oar: OarConfig {
                max_batch: 8,
                ..OarConfig::with_fd_timeout(SimDuration::from_millis(20))
            },
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 15)
            });
        let crash_at = SimTime::from_micros(500 + seed * 700);
        cluster.world.schedule_crash(ProcessId::new(0), crash_at);
        assert!(
            cluster.run_to_completion(SimTime::from_secs(120)),
            "seed {seed}: batched workload did not finish after sequencer crash at {crash_at}"
        );
        assert_eq!(cluster.completed_requests().len(), 30, "seed {seed}");
        run_checks(&cluster, &format!("batched sequencer-crash seed {seed}"));
    }
}

#[test]
fn propositions_hold_with_batched_sequencer_under_partition() {
    // Figure-4 family with batching: minority partition containing the
    // sequencer, crash, heal — Opt-undeliveries may occur; consistency must
    // hold and batching must still amortise the ordering broadcasts.
    for seed in 0..4u64 {
        let config = ClusterConfig {
            num_servers: 5,
            num_clients: 3,
            net: NetConfig::constant(SimDuration::from_micros(100)),
            oar: OarConfig {
                max_batch: 8,
                ..OarConfig::with_fd_timeout(SimDuration::from_millis(25))
            },
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| counter_workload(c, 6));
        let servers = cluster.servers.clone();
        let clients = cluster.clients.clone();
        let minority = vec![servers[0], servers[1], clients[1], clients[2]];
        let majority = vec![servers[2], servers[3], servers[4], clients[0]];
        cluster
            .world
            .schedule_partition(SimTime::from_millis(3), vec![minority, majority]);
        cluster
            .world
            .schedule_crash(servers[0], SimTime::from_millis(6 + seed));
        cluster.world.schedule_heal(SimTime::from_millis(120));
        assert!(
            cluster.run_to_completion(SimTime::from_secs(120)),
            "seed {seed}: batched workload did not finish"
        );
        run_checks(&cluster, &format!("batched partition seed {seed}"));
    }
}

/// Runs the cluster to completion, then lets the final watermark
/// announcements propagate so end-of-run payload levels reflect the garbage
/// collector rather than in-flight messages.
fn run_and_settle(cluster: &mut Cluster<CounterMachine>, horizon: SimTime) -> bool {
    let done = cluster.run_to_completion(horizon);
    let settle = cluster.world.now() + SimDuration::from_millis(60);
    cluster.world.run_until(settle);
    done
}

/// Payload GC under a sequencer crash (satellite of the watermark protocol):
/// after recovery the alive servers' payload maps return to the
/// unsettled-epoch window — they do not retain the whole workload — and no
/// reply is lost to premature pruning (every request still completes and the
/// external-consistency proposition still holds).
#[test]
fn payload_gc_bounded_after_sequencer_crash() {
    let cut = 8u64;
    let pipeline = 4usize;
    for seed in 0..6u64 {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::lan(),
            oar: OarConfig {
                epoch_cut_after: Some(cut),
                max_batch: 4,
                ..OarConfig::with_fd_timeout(SimDuration::from_millis(20))
            },
            client_pipeline: pipeline,
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 40)
            });
        let crash_at = SimTime::from_micros(500 + seed * 900);
        cluster.world.schedule_crash(ProcessId::new(0), crash_at);
        assert!(
            run_and_settle(&mut cluster, SimTime::from_secs(120)),
            "seed {seed}: workload did not finish after sequencer crash"
        );
        // No reply lost to pruning: at-least-once still holds…
        assert_eq!(cluster.completed_requests().len(), 80, "seed {seed}");
        // …and so do the consistency propositions.
        run_checks(&cluster, &format!("gc sequencer-crash seed {seed}"));
        // The collector actually ran and the bound is the epoch window, not
        // the workload size.
        assert!(
            cluster.total_payloads_pruned() > 0,
            "seed {seed}: watermark GC never pruned"
        );
        let window = cut + (config.num_clients * pipeline) as u64;
        let bound = 2 * window + 8;
        let residual = cluster.current_payloads();
        assert!(
            residual <= bound,
            "seed {seed}: {residual} payloads retained after recovery \
             (bound {bound}, workload 80)"
        );
    }
}

/// Payload GC under the Figure-4 fault family: a minority partition holding
/// the crashed sequencer stalls the minority's watermark (the majority keeps
/// pruning — suspected replicas don't hold the collector back), and after the
/// heal every alive server converges back to the watermark bound without
/// losing a single reply.
#[test]
fn payload_gc_recovers_after_minority_partition() {
    let cut = 8u64;
    let pipeline = 4usize;
    for seed in 0..4u64 {
        let config = ClusterConfig {
            num_servers: 5,
            num_clients: 3,
            net: NetConfig::constant(SimDuration::from_micros(100)),
            oar: OarConfig {
                epoch_cut_after: Some(cut),
                max_batch: 4,
                ..OarConfig::with_fd_timeout(SimDuration::from_millis(25))
            },
            client_pipeline: pipeline,
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 20)
            });
        let servers = cluster.servers.clone();
        let clients = cluster.clients.clone();
        let minority = vec![servers[0], servers[1], clients[1], clients[2]];
        let majority = vec![servers[2], servers[3], servers[4], clients[0]];
        cluster
            .world
            .schedule_partition(SimTime::from_millis(3), vec![minority, majority]);
        cluster
            .world
            .schedule_crash(servers[0], SimTime::from_millis(6 + seed));
        cluster.world.schedule_heal(SimTime::from_millis(120));
        assert!(
            run_and_settle(&mut cluster, SimTime::from_secs(120)),
            "seed {seed}: workload did not finish after partition"
        );
        assert_eq!(cluster.completed_requests().len(), 60, "seed {seed}");
        run_checks(&cluster, &format!("gc partition seed {seed}"));
        assert!(
            cluster.total_payloads_pruned() > 0,
            "seed {seed}: watermark GC never pruned"
        );
        let window = cut + (config.num_clients * pipeline) as u64;
        let bound = 2 * window + 8;
        let residual = cluster.current_payloads();
        assert!(
            residual <= bound,
            "seed {seed}: {residual} payloads retained after heal \
             (bound {bound}, workload 60)"
        );
    }
}

/// Pipelined clients must not weaken any proposition: rerun the
/// sequencer-crash scenario with a deep pipeline and batched ordering.
#[test]
fn propositions_hold_with_pipelined_clients_under_crash() {
    for seed in 0..6u64 {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            net: NetConfig::lan(),
            oar: OarConfig {
                max_batch: 8,
                ..OarConfig::with_fd_timeout(SimDuration::from_millis(20))
            },
            client_pipeline: 8,
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |c| {
                counter_workload(c, 15)
            });
        let crash_at = SimTime::from_micros(500 + seed * 700);
        cluster.world.schedule_crash(ProcessId::new(0), crash_at);
        assert!(
            cluster.run_to_completion(SimTime::from_secs(120)),
            "seed {seed}: pipelined workload did not finish after crash"
        );
        assert_eq!(cluster.completed_requests().len(), 30, "seed {seed}");
        run_checks(&cluster, &format!("pipelined sequencer-crash seed {seed}"));
    }
}

#[test]
fn epoch_cutting_preserves_correctness() {
    // The §5.3 remark: proactively cutting epochs (running phase 2 regularly)
    // must not affect safety, only performance.
    let oar = OarConfig {
        epoch_cut_after: Some(5),
        ..OarConfig::default()
    };
    let config = ClusterConfig {
        num_servers: 3,
        num_clients: 2,
        net: NetConfig::lan(),
        oar,
        seed: 9,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<CounterMachine> =
        Cluster::build(&config, CounterMachine::default, |c| {
            counter_workload(c, 25)
        });
    assert!(cluster.run_to_completion(SimTime::from_secs(120)));
    assert_eq!(cluster.completed_requests().len(), 50);
    assert!(
        cluster.total_phase2_entries() > 0,
        "epoch cutting should run phase 2"
    );
    assert_eq!(
        cluster.total_undeliveries(),
        0,
        "proactive cuts never undo deliveries"
    );
    run_checks(&cluster, "epoch-cut");
}
