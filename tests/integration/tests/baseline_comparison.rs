//! Cross-protocol integration tests: the latency/consistency trade-off the
//! paper argues for, measured on identical workloads.

use oar_bench::experiments;

#[test]
fn latency_ordering_oar_tracks_sequencer_and_beats_consensus() {
    let rows = experiments::latency_experiment(&[3, 5], 40, 77);
    for &n in &[3usize, 5] {
        let mean = |protocol: &str| {
            rows.iter()
                .find(|r| r.protocol == protocol && r.servers == n)
                .map(|r| r.latency_ms.mean)
                .expect("row present")
        };
        let oar = mean("oar");
        let seq = mean("fixed-sequencer");
        let ct = mean("ct-abcast");
        assert!(
            oar < ct,
            "n={n}: OAR ({oar:.3} ms) should beat consensus-based broadcast ({ct:.3} ms)"
        );
        assert!(
            oar < seq * 2.0,
            "n={n}: OAR ({oar:.3} ms) should stay within 2x of the sequencer baseline ({seq:.3} ms)"
        );
    }
}

#[test]
fn throughput_rows_cover_all_protocols() {
    let rows = experiments::throughput_experiment(3, &[1, 4], 20, 5);
    // Five protocols (oar, oar-batched, oar-pipelined, fixed-sequencer,
    // ct-abcast) × two client counts.
    assert_eq!(rows.len(), 10);
    for r in &rows {
        assert!(r.requests_per_second > 0.0, "{r:?}");
        assert!(r.requests > 0, "{r:?}");
    }
    // More closed-loop clients => more total completed requests per second for
    // every protocol (the sweep is far from saturation at these sizes).
    for protocol in ["oar", "oar-batched", "fixed-sequencer", "ct-abcast"] {
        let one = rows
            .iter()
            .find(|r| r.protocol == protocol && r.clients == 1)
            .unwrap();
        let four = rows
            .iter()
            .find(|r| r.protocol == protocol && r.clients == 4)
            .unwrap();
        assert!(
            four.requests_per_second > one.requests_per_second,
            "{protocol}: {} vs {}",
            four.requests_per_second,
            one.requests_per_second
        );
    }
    // The batched sequencer amortises its ordering broadcasts.
    let batched = rows
        .iter()
        .find(|r| r.protocol == "oar-batched" && r.clients == 4)
        .unwrap();
    assert!(
        batched.order_messages_sent < batched.requests as u64,
        "batched sequencer sent {} OrderMsgs for {} requests",
        batched.order_messages_sent,
        batched.requests
    );
    // The pipelined variant also amortises the reply traffic: fewer
    // ReplyBatch wires than individual replies, while answering everything.
    let pipelined = rows
        .iter()
        .find(|r| r.protocol == "oar-pipelined" && r.clients == 4)
        .unwrap();
    assert_eq!(pipelined.replies_sent, 3 * pipelined.requests as u64);
    assert!(
        pipelined.reply_messages_sent * 2 < pipelined.replies_sent,
        "reply batching should at least halve the wire count ({} vs {})",
        pipelined.reply_messages_sent,
        pipelined.replies_sent
    );
}

#[test]
fn undo_experiment_scenarios_stay_consistent() {
    let rows = experiments::undo_experiment(123);
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(r.consistent, "{r:?}");
    }
    let failure_free = rows.iter().find(|r| r.scenario == "failure-free").unwrap();
    assert_eq!(failure_free.opt_undeliveries, 0);
    assert_eq!(failure_free.phase2_entries, 0);
}

#[test]
fn failover_recovery_grows_with_fd_timeout() {
    let rows = experiments::failover_experiment(&[3], &[10, 100], 11);
    let fast = rows.iter().find(|r| r.fd_timeout_ms == 10.0).unwrap();
    let slow = rows.iter().find(|r| r.fd_timeout_ms == 100.0).unwrap();
    assert!(fast.consistent && slow.consistent);
    assert!(
        slow.recovery_ms > fast.recovery_ms,
        "a larger suspicion timeout must lengthen fail-over ({} vs {})",
        slow.recovery_ms,
        fast.recovery_ms
    );
}

#[test]
fn gc_ablation_is_safe_and_bounds_epoch_length() {
    let rows = experiments::gc_experiment(&[None, Some(10)], 30, 21);
    for r in &rows {
        assert!(r.consistent, "{r:?}");
    }
    let never = rows.iter().find(|r| r.cut_after.is_none()).unwrap();
    let cut = rows.iter().find(|r| r.cut_after == Some(10)).unwrap();
    assert!(cut.epochs_per_server > never.epochs_per_server);
}
