//! Cross-crate integration tests; see the `tests/` directory of this package.
